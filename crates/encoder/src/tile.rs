//! Independent tile encoding: mode decision, motion estimation,
//! residual coding and local reconstruction for one tile of one frame.
//!
//! Tiles are the unit of parallelism (paper §II-C): no prediction state
//! crosses tile boundaries within a picture, so every tile of a frame
//! can be encoded on a different core. Motion compensation may read
//! anywhere in the *reference* pictures, as in HEVC.

use crate::bits::{se_len, BitWriter};
use crate::block::code_residual_into;
use crate::config::{EncoderConfig, TileConfig};
use crate::scratch::EncScratch;
use crate::stats::TileStats;
use medvt_frame::{Frame, FrameKind, Plane, Rect};
use medvt_motion::{CostMetric, MotionVector, SearchContext};
use std::cell::RefCell;

/// Everything produced by encoding one tile.
#[derive(Debug, Clone)]
pub struct TileOutcome {
    /// Operation counts, bits and distortion.
    pub stats: TileStats,
    /// The tile's slice of the bitstream (byte-aligned).
    pub bytes: Vec<u8>,
    /// Reconstructed luma, tile-local coordinates.
    pub recon_y: Plane,
    /// Reconstructed Cb, tile-local.
    pub recon_u: Plane,
    /// Reconstructed Cr, tile-local.
    pub recon_v: Plane,
    /// Median motion vector of the tile's inter blocks — inherited by
    /// later GOP frames (paper §III-C2).
    pub dominant_mv: MotionVector,
}

thread_local! {
    /// Per-thread scratch backing [`encode_tile`]; persistent worker
    /// threads (the runtime pool) reuse it across every tile they
    /// encode.
    static TILE_SCRATCH: RefCell<EncScratch> = RefCell::new(EncScratch::new());
}

/// Encodes one tile.
///
/// `refs` holds the reconstructed reference frames (empty for intra
/// frames; one for P, two for B). The tile rectangle must be aligned to
/// an 8-sample grid so luma 8x8 and chroma 4x4 transforms always fit.
///
/// Per-block working memory comes from a thread-local [`EncScratch`],
/// so steady-state encoding allocates only the per-tile outputs
/// (reconstruction planes and bitstream); use
/// [`encode_tile_with_scratch`] to manage the scratch explicitly.
///
/// # Panics
///
/// Panics when the tile is unaligned, outside the frame, or `refs` is
/// empty for an inter frame kind.
pub fn encode_tile(
    original: &Frame,
    refs: &[&Frame],
    kind: FrameKind,
    tile: Rect,
    tcfg: &TileConfig,
    ecfg: &EncoderConfig,
) -> TileOutcome {
    TILE_SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => {
            encode_tile_with_scratch(original, refs, kind, tile, tcfg, ecfg, &mut scratch)
        }
        // Unreachable in practice (tile encoding does not re-enter),
        // but a fresh scratch is always a safe fallback.
        Err(_) => encode_tile_with_scratch(
            original,
            refs,
            kind,
            tile,
            tcfg,
            ecfg,
            &mut EncScratch::new(),
        ),
    })
}

/// [`encode_tile`] with caller-owned scratch buffers — bit-identical
/// output, but the caller controls buffer reuse (e.g. one scratch per
/// worker thread held across frames).
///
/// # Panics
///
/// Panics when the tile is unaligned, outside the frame, or `refs` is
/// empty for an inter frame kind.
pub fn encode_tile_with_scratch(
    original: &Frame,
    refs: &[&Frame],
    kind: FrameKind,
    tile: Rect,
    tcfg: &TileConfig,
    ecfg: &EncoderConfig,
    scratch: &mut EncScratch,
) -> TileOutcome {
    assert!(
        tile.x.is_multiple_of(8)
            && tile.y.is_multiple_of(8)
            && tile.w.is_multiple_of(8)
            && tile.h.is_multiple_of(8),
        "tile {tile} must align to the 8-sample grid"
    );
    assert!(
        original.y().bounds().contains_rect(&tile),
        "tile {tile} outside frame"
    );
    assert!(!tile.is_empty(), "tile must be non-empty");
    let inter = kind.is_inter() && !refs.is_empty();
    if kind.is_inter() {
        assert!(!refs.is_empty(), "inter frame requires reference frames");
    }

    let mut stats = TileStats::new(tile);
    let mut writer = BitWriter::new();
    let mut recon_y = Plane::new(tile.w, tile.h);
    let mut recon_u = Plane::new(tile.w / 2, tile.h / 2);
    let mut recon_v = Plane::new(tile.w / 2, tile.h / 2);
    let algo = tcfg.search.instantiate();
    let lambda = tcfg.qp.lambda();
    let chroma_qp = tcfg.qp.offset(ecfg.chroma_qp_offset);
    let mut prev_mv = MotionVector::ZERO;

    // Split the scratch into independent per-buffer borrows once.
    let EncScratch {
        residual,
        orig_block,
        intra_pred,
        mode_tmp,
        inter_pred,
        recon_block,
        luma_refs,
        chroma_orig,
        chroma_pred,
        chroma_refs,
        inter_mvs,
        mv_xs,
        mv_ys,
    } = scratch;
    inter_mvs.clear();

    let bs = ecfg.block_size;
    let tile_local = Rect::frame(tile.w, tile.h);
    let mut by = 0;
    while by < tile.h {
        let bh = bs.min(tile.h - by);
        let mut bx = 0;
        while bx < tile.w {
            let bw = bs.min(tile.w - bx);
            let abs_block = Rect::new(tile.x + bx, tile.y + by, bw, bh);
            let rel_block = Rect::new(bx, by, bw, bh);
            original.y().copy_rect_into(&abs_block, orig_block);

            // Intra candidate (always available).
            luma_refs.regather(&recon_y, &rel_block, &tile_local);
            let (intra_mode, intra_sad) =
                luma_refs.best_mode_into(orig_block, bw, bh, intra_pred, mode_tmp);
            let intra_header_bits = 1 + 2; // mode flag + intra mode index
            let intra_cost = intra_sad as f64 + lambda * intra_header_bits as f64;

            // Inter candidate.
            let mut inter_choice: Option<(usize, MotionVector, u64, u64)> = None;
            if inter {
                for (ref_idx, reference) in refs.iter().enumerate() {
                    let ctx = SearchContext::new(
                        original.y(),
                        reference.y(),
                        abs_block,
                        tcfg.window,
                        CostMetric::Sad,
                        prev_mv,
                    );
                    let r = algo.search(&ctx);
                    stats.sad_samples += r.evaluations * abs_block.area() as u64;
                    let better = inter_choice
                        .as_ref()
                        .is_none_or(|&(_, _, cost, _)| r.cost < cost);
                    if better {
                        inter_choice = Some((ref_idx, r.mv, r.cost, r.evaluations));
                    }
                }
            }

            let use_inter = match inter_choice {
                None => false,
                Some((_, mv, sad, _)) => {
                    let mvd = mv - prev_mv;
                    let header =
                        1 + u64::from(refs.len() > 1) + se_len(mvd.x as i32) + se_len(mvd.y as i32);
                    let inter_cost = sad as f64 + lambda * header as f64;
                    inter_cost <= intra_cost
                }
            };

            let prediction: &Vec<u8> = if use_inter {
                let (ref_idx, mv, _, _) = inter_choice.expect("inter chosen");
                let reference = refs[ref_idx];
                reference.y().copy_block_clamped_into(
                    abs_block.x as isize + mv.x as isize,
                    abs_block.y as isize + mv.y as isize,
                    bw,
                    bh,
                    inter_pred,
                );
                // Header: inter flag, ref index, MV difference.
                writer.write_bit(true);
                if refs.len() > 1 {
                    writer.write_bit(ref_idx == 1);
                }
                let mvd = mv - prev_mv;
                writer.write_se(mvd.x as i32);
                writer.write_se(mvd.y as i32);
                prev_mv = mv;
                inter_mvs.push(mv);
                stats.inter_blocks += 1;
                inter_pred
            } else {
                writer.write_bit(false);
                writer.write_bits(intra_mode.index(), 2);
                stats.intra_blocks += 1;
                intra_pred
            };

            // Luma residual (8x8 transforms always fit: bw/bh are
            // multiples of 8 given grid alignment).
            let coded = code_residual_into(
                orig_block,
                prediction,
                bw,
                bh,
                8,
                tcfg.qp,
                ecfg.transform,
                &mut writer,
                residual,
                recon_block,
            );
            stats.luma_ssd += coded.ssd;
            stats.transform_samples += coded.transform_samples;
            recon_y.write_rect(&rel_block, recon_block);

            // Chroma (4:2:0): collocated block at half geometry.
            if ecfg.chroma {
                let cw = bw / 2;
                let ch = bh / 2;
                let c_abs = Rect::new(abs_block.x / 2, abs_block.y / 2, cw, ch);
                let c_rel = Rect::new(rel_block.x / 2, rel_block.y / 2, cw, ch);
                for (plane_idx, (orig_c, recon_c)) in
                    [(original.u(), &mut recon_u), (original.v(), &mut recon_v)]
                        .into_iter()
                        .enumerate()
                {
                    orig_c.copy_rect_into(&c_abs, chroma_orig);
                    if use_inter {
                        let (ref_idx, mv, _, _) = inter_choice.expect("inter chosen");
                        let rf = refs[ref_idx];
                        let plane = if plane_idx == 0 { rf.u() } else { rf.v() };
                        plane.copy_block_clamped_into(
                            c_abs.x as isize + (mv.x / 2) as isize,
                            c_abs.y as isize + (mv.y / 2) as isize,
                            cw,
                            ch,
                            chroma_pred,
                        );
                    } else {
                        // Chroma intra: DC from local chroma recon refs.
                        let c_tile = Rect::frame(tile.w / 2, tile.h / 2);
                        chroma_refs.regather(recon_c, &c_rel, &c_tile);
                        chroma_refs.predict_into(crate::intra::IntraMode::Dc, cw, ch, chroma_pred);
                    }
                    let coded_c = code_residual_into(
                        chroma_orig,
                        chroma_pred,
                        cw,
                        ch,
                        4,
                        chroma_qp,
                        ecfg.transform,
                        &mut writer,
                        residual,
                        recon_block,
                    );
                    stats.transform_samples += coded_c.transform_samples;
                    recon_c.write_rect(&c_rel, recon_block);
                }
            }
            bx += bw;
        }
        by += bh;
    }

    stats.bits = writer.bits_written();
    let dominant_mv = median_mv_with(inter_mvs, mv_xs, mv_ys);
    TileOutcome {
        stats,
        bytes: writer.into_bytes(),
        recon_y,
        recon_u,
        recon_v,
        dominant_mv,
    }
}

/// Component-wise median of the block motion vectors.
#[cfg(test)]
fn median_mv(mvs: &[MotionVector]) -> MotionVector {
    median_mv_with(mvs, &mut Vec::new(), &mut Vec::new())
}

/// [`median_mv`] with caller-owned sort buffers.
fn median_mv_with(mvs: &[MotionVector], xs: &mut Vec<i16>, ys: &mut Vec<i16>) -> MotionVector {
    if mvs.is_empty() {
        return MotionVector::ZERO;
    }
    xs.clear();
    xs.extend(mvs.iter().map(|m| m.x));
    ys.clear();
    ys.extend(mvs.iter().map(|m| m.y));
    xs.sort_unstable();
    ys.sort_unstable();
    MotionVector::new(xs[xs.len() / 2], ys[ys.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Qp, SearchSpec};
    use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
    use medvt_frame::Resolution;

    fn video() -> PhantomVideo {
        PhantomVideo::builder(BodyPart::Brain)
            .resolution(Resolution::new(96, 64))
            .motion(MotionPattern::Pan { dx: 1.0, dy: 0.0 })
            .noise_amplitude(0.0)
            .seed(3)
            .build()
    }

    fn default_cfgs(qp: u8) -> (TileConfig, EncoderConfig) {
        (
            TileConfig {
                qp: Qp::new(qp).unwrap(),
                search: SearchSpec::Diamond,
                window: medvt_motion::SearchWindow::W16,
            },
            EncoderConfig::default(),
        )
    }

    #[test]
    fn intra_tile_reconstructs_content() {
        let v = video();
        let f0 = v.render(0);
        let (tcfg, ecfg) = default_cfgs(22);
        let tile = Rect::new(0, 0, 96, 64);
        let out = encode_tile(&f0, &[], FrameKind::Intra, tile, &tcfg, &ecfg);
        assert_eq!(out.stats.intra_blocks, 4 * 6);
        assert_eq!(out.stats.inter_blocks, 0);
        assert!(out.stats.psnr() > 32.0, "psnr={}", out.stats.psnr());
        assert!(out.stats.bits > 0);
        assert_eq!(out.dominant_mv, MotionVector::ZERO);
        assert_eq!(out.bytes.len() as u64 * 8 % 8, 0);
    }

    #[test]
    fn inter_tile_tracks_pan_motion() {
        let v = video();
        let f0 = v.render(0);
        let f1 = v.render(2);
        let (tcfg, ecfg) = default_cfgs(27);
        let tile = Rect::new(16, 16, 64, 32); // center region, real motion
        let out = encode_tile(&f1, &[&f0], FrameKind::Predicted, tile, &tcfg, &ecfg);
        assert!(out.stats.inter_blocks > 0, "pan content should code inter");
        // Content moved right 2 px over two frames.
        assert_eq!(out.dominant_mv, MotionVector::new(-2, 0));
        assert!(out.stats.sad_samples > 0);
    }

    #[test]
    fn inter_beats_intra_on_moving_content() {
        let v = video();
        let f0 = v.render(0);
        let f1 = v.render(1);
        let (tcfg, ecfg) = default_cfgs(32);
        let tile = Rect::new(16, 16, 64, 32);
        let inter = encode_tile(&f1, &[&f0], FrameKind::Predicted, tile, &tcfg, &ecfg);
        let intra = encode_tile(&f1, &[], FrameKind::Intra, tile, &tcfg, &ecfg);
        assert!(
            inter.stats.bits < intra.stats.bits,
            "inter {} vs intra {} bits",
            inter.stats.bits,
            intra.stats.bits
        );
    }

    #[test]
    fn higher_qp_lowers_bits_and_psnr() {
        let v = video();
        let f0 = v.render(0);
        let tile = Rect::new(0, 0, 96, 64);
        let ecfg = EncoderConfig::default();
        let fine = encode_tile(
            &f0,
            &[],
            FrameKind::Intra,
            tile,
            &TileConfig::with_qp(Qp::new(22).unwrap()),
            &ecfg,
        );
        let coarse = encode_tile(
            &f0,
            &[],
            FrameKind::Intra,
            tile,
            &TileConfig::with_qp(Qp::new(42).unwrap()),
            &ecfg,
        );
        assert!(coarse.stats.bits < fine.stats.bits);
        assert!(coarse.stats.psnr() < fine.stats.psnr());
    }

    #[test]
    fn two_reference_frames_double_search_effort() {
        let v = video();
        let f0 = v.render(0);
        let f2 = v.render(2);
        let f1 = v.render(1);
        let (tcfg, ecfg) = default_cfgs(32);
        let tile = Rect::new(16, 16, 64, 32);
        let one_ref = encode_tile(&f1, &[&f0], FrameKind::Predicted, tile, &tcfg, &ecfg);
        let two_ref = encode_tile(&f1, &[&f0, &f2], FrameKind::BiPredicted, tile, &tcfg, &ecfg);
        assert!(two_ref.stats.sad_samples > one_ref.stats.sad_samples);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn unaligned_tile_rejected() {
        let v = video();
        let f0 = v.render(0);
        let (tcfg, ecfg) = default_cfgs(32);
        encode_tile(
            &f0,
            &[],
            FrameKind::Intra,
            Rect::new(4, 0, 20, 16),
            &tcfg,
            &ecfg,
        );
    }

    #[test]
    #[should_panic(expected = "reference")]
    fn inter_without_refs_rejected() {
        let v = video();
        let f0 = v.render(0);
        let (tcfg, ecfg) = default_cfgs(32);
        encode_tile(
            &f0,
            &[],
            FrameKind::Predicted,
            Rect::new(0, 0, 32, 32),
            &tcfg,
            &ecfg,
        );
    }

    #[test]
    fn luma_only_mode_skips_chroma() {
        let v = video();
        let f0 = v.render(0);
        let tile = Rect::new(0, 0, 32, 32);
        let tcfg = TileConfig::with_qp(Qp::new(27).unwrap());
        let with_chroma = encode_tile(
            &f0,
            &[],
            FrameKind::Intra,
            tile,
            &tcfg,
            &EncoderConfig::default(),
        );
        let luma_only = encode_tile(
            &f0,
            &[],
            FrameKind::Intra,
            tile,
            &tcfg,
            &EncoderConfig {
                chroma: false,
                ..Default::default()
            },
        );
        assert!(luma_only.stats.bits < with_chroma.stats.bits);
        assert!(luma_only.stats.transform_samples < with_chroma.stats.transform_samples);
    }

    #[test]
    fn median_mv_is_robust() {
        let mvs = vec![
            MotionVector::new(2, 0),
            MotionVector::new(2, 0),
            MotionVector::new(2, 1),
            MotionVector::new(-9, 7), // outlier
            MotionVector::new(2, 0),
        ];
        assert_eq!(median_mv(&mvs), MotionVector::new(2, 0));
        assert_eq!(median_mv(&[]), MotionVector::ZERO);
    }
}

//! Intra prediction: DC, planar, horizontal and vertical modes.
//!
//! Prediction references the *reconstructed* samples above and left of
//! the block, like HEVC, and never crosses tile boundaries (tiles are
//! independently decodable).

use medvt_frame::{Plane, Rect};
use serde::{Deserialize, Serialize};

/// The implemented subset of HEVC's 35 intra modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntraMode {
    /// Mean of the available reference samples.
    Dc,
    /// Bilinear blend of the top/left references.
    Planar,
    /// Copy the left reference column across each row.
    Horizontal,
    /// Copy the top reference row down each column.
    Vertical,
}

impl IntraMode {
    /// All modes in mode-decision order.
    pub const ALL: [IntraMode; 4] = [
        IntraMode::Dc,
        IntraMode::Planar,
        IntraMode::Horizontal,
        IntraMode::Vertical,
    ];

    /// Mode index used in the bitstream header (2 bits).
    pub const fn index(&self) -> u32 {
        match self {
            IntraMode::Dc => 0,
            IntraMode::Planar => 1,
            IntraMode::Horizontal => 2,
            IntraMode::Vertical => 3,
        }
    }
}

/// Reference samples for one block: the row above and column left of
/// the block, when available inside the tile.
#[derive(Debug, Clone)]
pub struct IntraRefs {
    top: Option<Vec<u8>>,
    left: Option<Vec<u8>>,
}

impl IntraRefs {
    /// Gathers reference samples for `block` from the reconstructed
    /// plane, restricted to `tile` (no prediction across tile borders).
    ///
    /// # Panics
    ///
    /// Panics when `block` is not inside `tile`.
    pub fn gather(recon: &Plane, block: &Rect, tile: &Rect) -> Self {
        assert!(
            tile.contains_rect(block),
            "block {block} outside tile {tile}"
        );
        let top = if block.y > tile.y {
            let row = block.y - 1;
            Some(
                (block.x..block.right())
                    .map(|col| recon.get(col, row))
                    .collect(),
            )
        } else {
            None
        };
        let left = if block.x > tile.x {
            let col = block.x - 1;
            Some(
                (block.y..block.bottom())
                    .map(|row| recon.get(col, row))
                    .collect(),
            )
        } else {
            None
        };
        Self { top, left }
    }

    /// `true` when neither reference edge is available (tile corner).
    pub fn is_empty(&self) -> bool {
        self.top.is_none() && self.left.is_none()
    }

    /// Predicts a `w x h` block with `mode`, returning row-major samples.
    ///
    /// Unavailable references fall back to the HEVC default level 128,
    /// and directional modes degrade to DC when their edge is missing.
    pub fn predict(&self, mode: IntraMode, w: usize, h: usize) -> Vec<u8> {
        match mode {
            IntraMode::Dc => vec![self.dc_value(), 0][..1].repeat(w * h),
            IntraMode::Planar => self.predict_planar(w, h),
            IntraMode::Horizontal => match &self.left {
                Some(left) => {
                    let mut out = Vec::with_capacity(w * h);
                    for &edge in left.iter().take(h) {
                        out.extend(std::iter::repeat_n(edge, w));
                    }
                    out
                }
                None => vec![self.dc_value(); w * h],
            },
            IntraMode::Vertical => match &self.top {
                Some(top) => {
                    let mut out = Vec::with_capacity(w * h);
                    for _ in 0..h {
                        out.extend_from_slice(top);
                    }
                    out
                }
                None => vec![self.dc_value(); w * h],
            },
        }
    }

    /// DC level: mean of available references, 128 when none exist.
    fn dc_value(&self) -> u8 {
        let mut sum = 0u32;
        let mut count = 0u32;
        if let Some(top) = &self.top {
            sum += top.iter().map(|&s| s as u32).sum::<u32>();
            count += top.len() as u32;
        }
        if let Some(left) = &self.left {
            sum += left.iter().map(|&s| s as u32).sum::<u32>();
            count += left.len() as u32;
        }
        (sum + count / 2)
            .checked_div(count)
            .map_or(128, |v| v as u8)
    }

    // `x`/`y` also feed the blend arithmetic, not just the indexing.
    #[allow(clippy::needless_range_loop)]
    fn predict_planar(&self, w: usize, h: usize) -> Vec<u8> {
        let dc = self.dc_value();
        let top: Vec<u16> = match &self.top {
            Some(t) => t.iter().map(|&s| s as u16).collect(),
            None => vec![dc as u16; w],
        };
        let left: Vec<u16> = match &self.left {
            Some(l) => l.iter().map(|&s| s as u16).collect(),
            None => vec![dc as u16; h],
        };
        let top_right = *top.last().expect("top non-empty") as u32;
        let bottom_left = *left.last().expect("left non-empty") as u32;
        let mut out = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                // HEVC-style planar: horizontal + vertical linear blends.
                let hor = (w as u32 - 1 - x as u32) * left[y] as u32 + (x as u32 + 1) * top_right;
                let ver = (h as u32 - 1 - y as u32) * top[x] as u32 + (y as u32 + 1) * bottom_left;
                let v = (hor * h as u32 + ver * w as u32 + (w * h) as u32) / (2 * (w * h) as u32);
                out.push(v.min(255) as u8);
            }
        }
        out
    }

    /// Picks the mode with the lowest SAD against `original` (row-major
    /// `w x h` samples), returning the mode, its prediction and the SAD.
    pub fn best_mode(&self, original: &[u8], w: usize, h: usize) -> (IntraMode, Vec<u8>, u64) {
        let mut best: Option<(IntraMode, Vec<u8>, u64)> = None;
        for mode in IntraMode::ALL {
            let pred = self.predict(mode, w, h);
            let sad: u64 = original
                .iter()
                .zip(&pred)
                .map(|(&a, &b)| (a as i16 - b as i16).unsigned_abs() as u64)
                .sum();
            if best.as_ref().is_none_or(|(_, _, c)| sad < *c) {
                best = Some((mode, pred, sad));
            }
        }
        best.expect("at least one intra mode")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recon_with_borders() -> Plane {
        let mut p = Plane::filled(16, 16, 0);
        // Row above the block at y=4: value 100; column left at x=4: 50.
        for col in 0..16 {
            p.set(col, 3, 100);
        }
        for row in 0..16 {
            p.set(3, row, 50);
        }
        p
    }

    #[test]
    fn gather_respects_tile_border() {
        let recon = recon_with_borders();
        let tile = Rect::new(4, 4, 12, 12);
        let block = Rect::new(4, 4, 4, 4);
        let refs = IntraRefs::gather(&recon, &block, &tile);
        // Block sits at the tile corner: nothing available.
        assert!(refs.is_empty());
        // Same block inside a frame-wide tile: both edges available.
        let refs = IntraRefs::gather(&recon, &block, &Rect::frame(16, 16));
        assert!(!refs.is_empty());
    }

    #[test]
    fn dc_without_refs_is_128() {
        let recon = Plane::new(8, 8);
        let tile = Rect::frame(8, 8);
        let refs = IntraRefs::gather(&recon, &Rect::new(0, 0, 4, 4), &tile);
        let pred = refs.predict(IntraMode::Dc, 4, 4);
        assert!(pred.iter().all(|&s| s == 128));
    }

    #[test]
    fn dc_averages_references() {
        let recon = recon_with_borders();
        let refs = IntraRefs::gather(&recon, &Rect::new(4, 4, 4, 4), &Rect::frame(16, 16));
        let pred = refs.predict(IntraMode::Dc, 4, 4);
        // top 4x100 + left 4x50 → mean 75.
        assert!(pred.iter().all(|&s| s == 75), "pred={pred:?}");
    }

    #[test]
    fn horizontal_copies_left_column() {
        let recon = recon_with_borders();
        let refs = IntraRefs::gather(&recon, &Rect::new(4, 4, 4, 2), &Rect::frame(16, 16));
        let pred = refs.predict(IntraMode::Horizontal, 4, 2);
        assert!(pred.iter().all(|&s| s == 50));
    }

    #[test]
    fn vertical_copies_top_row() {
        let recon = recon_with_borders();
        let refs = IntraRefs::gather(&recon, &Rect::new(4, 4, 2, 4), &Rect::frame(16, 16));
        let pred = refs.predict(IntraMode::Vertical, 2, 4);
        assert!(pred.iter().all(|&s| s == 100));
    }

    #[test]
    fn planar_blends_smoothly() {
        let recon = recon_with_borders();
        let refs = IntraRefs::gather(&recon, &Rect::new(4, 4, 4, 4), &Rect::frame(16, 16));
        let pred = refs.predict(IntraMode::Planar, 4, 4);
        // Values between left (50) and top (100) levels.
        assert!(pred.iter().all(|&s| (50..=100).contains(&s)), "{pred:?}");
        // Not constant (it interpolates).
        assert!(pred.iter().any(|&s| s != pred[0]));
    }

    #[test]
    fn best_mode_picks_matching_direction() {
        let recon = recon_with_borders();
        let refs = IntraRefs::gather(&recon, &Rect::new(4, 4, 4, 4), &Rect::frame(16, 16));
        // Original block = rows of 100 (matches vertical from top=100).
        let original = vec![100u8; 16];
        let (mode, pred, sad) = refs.best_mode(&original, 4, 4);
        assert_eq!(mode, IntraMode::Vertical);
        assert_eq!(sad, 0);
        assert_eq!(pred, original);
        // Original block = rows of 50 (matches horizontal from left=50).
        let original = vec![50u8; 16];
        let (mode, _, sad) = refs.best_mode(&original, 4, 4);
        assert_eq!(mode, IntraMode::Horizontal);
        assert_eq!(sad, 0);
    }

    #[test]
    fn mode_indices_are_unique() {
        let mut seen: Vec<u32> = IntraMode::ALL.iter().map(|m| m.index()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }
}

//! Intra prediction: DC, planar, horizontal and vertical modes.
//!
//! Prediction references the *reconstructed* samples above and left of
//! the block, like HEVC, and never crosses tile boundaries (tiles are
//! independently decodable).

use medvt_frame::{Plane, Rect};
use serde::{Deserialize, Serialize};

/// The implemented subset of HEVC's 35 intra modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntraMode {
    /// Mean of the available reference samples.
    Dc,
    /// Bilinear blend of the top/left references.
    Planar,
    /// Copy the left reference column across each row.
    Horizontal,
    /// Copy the top reference row down each column.
    Vertical,
}

impl IntraMode {
    /// All modes in mode-decision order.
    pub const ALL: [IntraMode; 4] = [
        IntraMode::Dc,
        IntraMode::Planar,
        IntraMode::Horizontal,
        IntraMode::Vertical,
    ];

    /// Mode index used in the bitstream header (2 bits).
    pub const fn index(&self) -> u32 {
        match self {
            IntraMode::Dc => 0,
            IntraMode::Planar => 1,
            IntraMode::Horizontal => 2,
            IntraMode::Vertical => 3,
        }
    }
}

/// Reference samples for one block: the row above and column left of
/// the block, when available inside the tile.
///
/// The edge buffers are reusable: [`IntraRefs::regather`] refills them
/// in place, so a scratch-owned `IntraRefs` makes reference gathering
/// zero-allocation in steady state.
#[derive(Debug, Clone, Default)]
pub struct IntraRefs {
    top: Vec<u8>,
    has_top: bool,
    left: Vec<u8>,
    has_left: bool,
}

impl IntraRefs {
    /// Gathers reference samples for `block` from the reconstructed
    /// plane, restricted to `tile` (no prediction across tile borders).
    ///
    /// # Panics
    ///
    /// Panics when `block` is not inside `tile`.
    pub fn gather(recon: &Plane, block: &Rect, tile: &Rect) -> Self {
        let mut refs = Self::default();
        refs.regather(recon, block, tile);
        refs
    }

    /// Refills this reference set in place (allocation-free once the
    /// edge buffers have grown to the block size).
    ///
    /// # Panics
    ///
    /// Panics when `block` is not inside `tile`.
    pub fn regather(&mut self, recon: &Plane, block: &Rect, tile: &Rect) {
        assert!(
            tile.contains_rect(block),
            "block {block} outside tile {tile}"
        );
        self.top.clear();
        self.has_top = block.y > tile.y;
        if self.has_top {
            let row = block.y - 1;
            self.top
                .extend_from_slice(&recon.row(row)[block.x..block.right()]);
        }
        self.left.clear();
        self.has_left = block.x > tile.x;
        if self.has_left {
            let col = block.x - 1;
            self.left
                .extend((block.y..block.bottom()).map(|row| recon.get(col, row)));
        }
    }

    /// `true` when neither reference edge is available (tile corner).
    pub fn is_empty(&self) -> bool {
        !self.has_top && !self.has_left
    }

    /// Predicts a `w x h` block with `mode`, returning row-major samples.
    ///
    /// Unavailable references fall back to the HEVC default level 128,
    /// and directional modes degrade to DC when their edge is missing.
    pub fn predict(&self, mode: IntraMode, w: usize, h: usize) -> Vec<u8> {
        let mut out = Vec::new();
        self.predict_into(mode, w, h, &mut out);
        out
    }

    /// Allocation-free [`IntraRefs::predict`]: clears `out` and writes
    /// the prediction into it. Bit-exact with [`IntraRefs::predict`].
    pub fn predict_into(&self, mode: IntraMode, w: usize, h: usize, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(w * h);
        match mode {
            IntraMode::Dc => out.resize(w * h, self.dc_value()),
            IntraMode::Planar => self.predict_planar_into(w, h, out),
            IntraMode::Horizontal => {
                if self.has_left {
                    for &edge in self.left.iter().take(h) {
                        out.extend(std::iter::repeat_n(edge, w));
                    }
                } else {
                    out.resize(w * h, self.dc_value());
                }
            }
            IntraMode::Vertical => {
                if self.has_top {
                    for _ in 0..h {
                        out.extend_from_slice(&self.top);
                    }
                } else {
                    out.resize(w * h, self.dc_value());
                }
            }
        }
    }

    /// DC level: mean of available references, 128 when none exist.
    fn dc_value(&self) -> u8 {
        let mut sum = 0u32;
        let mut count = 0u32;
        if self.has_top {
            sum += self.top.iter().map(|&s| s as u32).sum::<u32>();
            count += self.top.len() as u32;
        }
        if self.has_left {
            sum += self.left.iter().map(|&s| s as u32).sum::<u32>();
            count += self.left.len() as u32;
        }
        (sum + count / 2)
            .checked_div(count)
            .map_or(128, |v| v as u8)
    }

    fn predict_planar_into(&self, w: usize, h: usize, out: &mut Vec<u8>) {
        let dc = self.dc_value() as u32;
        // Missing edges read as a dc-filled row/column, exactly like
        // the former temporary-vector construction.
        let top = |x: usize| {
            if self.has_top {
                self.top[x] as u32
            } else {
                dc
            }
        };
        let left = |y: usize| {
            if self.has_left {
                self.left[y] as u32
            } else {
                dc
            }
        };
        let top_right = top(w - 1);
        let bottom_left = left(h - 1);
        for y in 0..h {
            for x in 0..w {
                // HEVC-style planar: horizontal + vertical linear blends.
                let hor = (w as u32 - 1 - x as u32) * left(y) + (x as u32 + 1) * top_right;
                let ver = (h as u32 - 1 - y as u32) * top(x) + (y as u32 + 1) * bottom_left;
                let v = (hor * h as u32 + ver * w as u32 + (w * h) as u32) / (2 * (w * h) as u32);
                out.push(v.min(255) as u8);
            }
        }
    }

    /// Picks the mode with the lowest SAD against `original` (row-major
    /// `w x h` samples), returning the mode, its prediction and the SAD.
    pub fn best_mode(&self, original: &[u8], w: usize, h: usize) -> (IntraMode, Vec<u8>, u64) {
        let mut best = Vec::new();
        let mut tmp = Vec::new();
        let (mode, sad) = self.best_mode_into(original, w, h, &mut best, &mut tmp);
        (mode, best, sad)
    }

    /// Allocation-free [`IntraRefs::best_mode`]: the winning prediction
    /// ends up in `best` (`tmp` is trial scratch), and the mode and its
    /// SAD are returned. Mode order and tie-breaking are identical to
    /// [`IntraRefs::best_mode`].
    pub fn best_mode_into(
        &self,
        original: &[u8],
        w: usize,
        h: usize,
        best: &mut Vec<u8>,
        tmp: &mut Vec<u8>,
    ) -> (IntraMode, u64) {
        let mut winner: Option<(IntraMode, u64)> = None;
        for mode in IntraMode::ALL {
            self.predict_into(mode, w, h, tmp);
            let sad: u64 = original
                .iter()
                .zip(tmp.iter())
                .map(|(&a, &b)| (a as i16 - b as i16).unsigned_abs() as u64)
                .sum();
            if winner.is_none_or(|(_, c)| sad < c) {
                winner = Some((mode, sad));
                std::mem::swap(best, tmp);
            }
        }
        winner.expect("at least one intra mode")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recon_with_borders() -> Plane {
        let mut p = Plane::filled(16, 16, 0);
        // Row above the block at y=4: value 100; column left at x=4: 50.
        for col in 0..16 {
            p.set(col, 3, 100);
        }
        for row in 0..16 {
            p.set(3, row, 50);
        }
        p
    }

    #[test]
    fn gather_respects_tile_border() {
        let recon = recon_with_borders();
        let tile = Rect::new(4, 4, 12, 12);
        let block = Rect::new(4, 4, 4, 4);
        let refs = IntraRefs::gather(&recon, &block, &tile);
        // Block sits at the tile corner: nothing available.
        assert!(refs.is_empty());
        // Same block inside a frame-wide tile: both edges available.
        let refs = IntraRefs::gather(&recon, &block, &Rect::frame(16, 16));
        assert!(!refs.is_empty());
    }

    #[test]
    fn dc_without_refs_is_128() {
        let recon = Plane::new(8, 8);
        let tile = Rect::frame(8, 8);
        let refs = IntraRefs::gather(&recon, &Rect::new(0, 0, 4, 4), &tile);
        let pred = refs.predict(IntraMode::Dc, 4, 4);
        assert!(pred.iter().all(|&s| s == 128));
    }

    #[test]
    fn dc_averages_references() {
        let recon = recon_with_borders();
        let refs = IntraRefs::gather(&recon, &Rect::new(4, 4, 4, 4), &Rect::frame(16, 16));
        let pred = refs.predict(IntraMode::Dc, 4, 4);
        // top 4x100 + left 4x50 → mean 75.
        assert!(pred.iter().all(|&s| s == 75), "pred={pred:?}");
    }

    #[test]
    fn horizontal_copies_left_column() {
        let recon = recon_with_borders();
        let refs = IntraRefs::gather(&recon, &Rect::new(4, 4, 4, 2), &Rect::frame(16, 16));
        let pred = refs.predict(IntraMode::Horizontal, 4, 2);
        assert!(pred.iter().all(|&s| s == 50));
    }

    #[test]
    fn vertical_copies_top_row() {
        let recon = recon_with_borders();
        let refs = IntraRefs::gather(&recon, &Rect::new(4, 4, 2, 4), &Rect::frame(16, 16));
        let pred = refs.predict(IntraMode::Vertical, 2, 4);
        assert!(pred.iter().all(|&s| s == 100));
    }

    #[test]
    fn planar_blends_smoothly() {
        let recon = recon_with_borders();
        let refs = IntraRefs::gather(&recon, &Rect::new(4, 4, 4, 4), &Rect::frame(16, 16));
        let pred = refs.predict(IntraMode::Planar, 4, 4);
        // Values between left (50) and top (100) levels.
        assert!(pred.iter().all(|&s| (50..=100).contains(&s)), "{pred:?}");
        // Not constant (it interpolates).
        assert!(pred.iter().any(|&s| s != pred[0]));
    }

    #[test]
    fn best_mode_picks_matching_direction() {
        let recon = recon_with_borders();
        let refs = IntraRefs::gather(&recon, &Rect::new(4, 4, 4, 4), &Rect::frame(16, 16));
        // Original block = rows of 100 (matches vertical from top=100).
        let original = vec![100u8; 16];
        let (mode, pred, sad) = refs.best_mode(&original, 4, 4);
        assert_eq!(mode, IntraMode::Vertical);
        assert_eq!(sad, 0);
        assert_eq!(pred, original);
        // Original block = rows of 50 (matches horizontal from left=50).
        let original = vec![50u8; 16];
        let (mode, _, sad) = refs.best_mode(&original, 4, 4);
        assert_eq!(mode, IntraMode::Horizontal);
        assert_eq!(sad, 0);
    }

    #[test]
    fn mode_indices_are_unique() {
        let mut seen: Vec<u32> = IntraMode::ALL.iter().map(|m| m.index()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }
}

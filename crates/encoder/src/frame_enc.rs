//! Whole-frame encoding: tile partition validation, parallel per-tile
//! encoding and reconstruction stitching.

use crate::config::{EncoderConfig, TileConfig};
use crate::stats::FrameStats;
use crate::tile::{encode_tile, TileOutcome};
use medvt_frame::{Frame, FrameKind, Rect};
use medvt_motion::MotionVector;

/// The tiling and per-tile configurations for one frame — what the
/// content-aware pipeline produces per GOP and the encoder consumes
/// per frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FramePlan {
    /// Tile rectangles (must exactly partition the frame on the
    /// 8-sample grid).
    pub tiles: Vec<Rect>,
    /// Per-tile configuration, same order and length as `tiles`.
    pub configs: Vec<TileConfig>,
}

impl FramePlan {
    /// A uniform `cols x rows` plan with one shared configuration.
    ///
    /// # Panics
    ///
    /// Panics when the grid does not divide the frame into 8-aligned
    /// tiles (see [`FramePlan::validate`]).
    pub fn uniform(frame: Rect, cols: usize, rows: usize, config: TileConfig) -> Self {
        let tiles = split_aligned(frame, cols, rows);
        let configs = vec![config; tiles.len()];
        let plan = Self { tiles, configs };
        plan.validate(&frame).expect("uniform plan must be valid");
        plan
    }

    /// Validates that the plan exactly partitions `frame` with
    /// 8-aligned tiles and one config per tile.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self, frame: &Rect) -> Result<(), String> {
        if self.tiles.is_empty() {
            return Err("plan has no tiles".into());
        }
        if self.tiles.len() != self.configs.len() {
            return Err(format!(
                "{} tiles but {} configs",
                self.tiles.len(),
                self.configs.len()
            ));
        }
        let mut area = 0usize;
        for t in &self.tiles {
            if t.is_empty() {
                return Err(format!("empty tile {t}"));
            }
            if !frame.contains_rect(t) {
                return Err(format!("tile {t} outside frame {frame}"));
            }
            if t.x % 8 != 0 || t.y % 8 != 0 || t.w % 8 != 0 || t.h % 8 != 0 {
                return Err(format!("tile {t} not 8-aligned"));
            }
            area += t.area();
        }
        if area != frame.area() {
            return Err(format!(
                "tiles cover {area} samples, frame has {}",
                frame.area()
            ));
        }
        for (i, a) in self.tiles.iter().enumerate() {
            for b in self.tiles.iter().skip(i + 1) {
                if a.intersects(b) {
                    return Err(format!("tiles {a} and {b} overlap"));
                }
            }
        }
        Ok(())
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }
}

/// Splits `frame` into a `cols x rows` grid whose interior boundaries
/// snap to the 8-sample grid (HEVC tiles snap to CTUs; 8 is this
/// substrate's coding granularity).
///
/// # Panics
///
/// Panics when the frame is too small for the requested grid.
pub fn split_aligned(frame: Rect, cols: usize, rows: usize) -> Vec<Rect> {
    assert!(cols > 0 && rows > 0, "grid must be non-empty");
    let xs = aligned_axis(frame.x, frame.w, cols);
    let ys = aligned_axis(frame.y, frame.h, rows);
    let mut tiles = Vec::with_capacity(cols * rows);
    for (y, h) in &ys {
        for (x, w) in &xs {
            tiles.push(Rect::new(*x, *y, *w, *h));
        }
    }
    tiles
}

fn aligned_axis(origin: usize, len: usize, n: usize) -> Vec<(usize, usize)> {
    assert!(
        len / 8 >= n,
        "cannot split {len} samples into {n} tiles of >=8 samples"
    );
    let units = len / 8; // length is a multiple of 8 for supported frames
    assert!(len % 8 == 0, "frame dimension {len} not 8-aligned");
    let base = units / n;
    let extra = units % n;
    let mut out = Vec::with_capacity(n);
    let mut pos = origin;
    for i in 0..n {
        let span = (base + usize::from(i < extra)) * 8;
        out.push((pos, span));
        pos += span;
    }
    out
}

/// An encoded frame: reconstruction, statistics, per-tile dominant
/// motion and the bitstream.
#[derive(Debug, Clone)]
pub struct EncodedFrame {
    /// The reconstructed picture (what a decoder would output), used
    /// as reference for later frames.
    pub recon: Frame,
    /// Per-tile statistics.
    pub stats: FrameStats,
    /// Median motion vector per tile, the direction later GOP frames
    /// inherit.
    pub dominant_mvs: Vec<MotionVector>,
    /// Concatenated tile bitstreams.
    pub bytes: Vec<u8>,
}

/// Encodes one frame according to `plan`.
///
/// With `parallel` set, tiles are encoded on scoped threads — the
/// frame-level parallelization the paper's scheduler distributes over
/// MPSoC cores.
///
/// # Panics
///
/// Panics when the plan fails [`FramePlan::validate`] or `refs` is
/// empty for an inter `kind`.
pub fn encode_frame(
    original: &Frame,
    refs: &[&Frame],
    kind: FrameKind,
    poc: usize,
    plan: &FramePlan,
    ecfg: &EncoderConfig,
    parallel: bool,
) -> EncodedFrame {
    let frame_rect = original.y().bounds();
    plan.validate(&frame_rect)
        .expect("frame plan must partition the frame");
    let outcomes: Vec<TileOutcome> = if parallel && plan.tiles.len() > 1 {
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = plan
                .tiles
                .iter()
                .zip(&plan.configs)
                .map(|(tile, cfg)| {
                    let tile = *tile;
                    let cfg = *cfg;
                    s.spawn(move |_| encode_tile(original, refs, kind, tile, &cfg, ecfg))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tile thread panicked"))
                .collect()
        })
        .expect("tile scope panicked")
    } else {
        plan.tiles
            .iter()
            .zip(&plan.configs)
            .map(|(tile, cfg)| encode_tile(original, refs, kind, *tile, cfg, ecfg))
            .collect()
    };

    // Stitch tile reconstructions into the frame reconstruction.
    let mut recon = Frame::black(original.resolution());
    let mut stats = FrameStats {
        poc,
        tiles: Vec::with_capacity(outcomes.len()),
    };
    let mut dominant_mvs = Vec::with_capacity(outcomes.len());
    let mut bytes = Vec::new();
    for (tile, outcome) in plan.tiles.iter().zip(outcomes) {
        recon.y_mut().write_rect(tile, outcome.recon_y.samples());
        let c_rect = Rect::new(tile.x / 2, tile.y / 2, tile.w / 2, tile.h / 2);
        recon.u_mut().write_rect(&c_rect, outcome.recon_u.samples());
        recon.v_mut().write_rect(&c_rect, outcome.recon_v.samples());
        stats.tiles.push(outcome.stats);
        dominant_mvs.push(outcome.dominant_mv);
        bytes.extend_from_slice(&outcome.bytes);
    }
    EncodedFrame {
        recon,
        stats,
        dominant_mvs,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Qp;
    use medvt_frame::quality::frame_psnr;
    use medvt_frame::synth::{BodyPart, PhantomVideo};
    use medvt_frame::Resolution;

    fn frame() -> Frame {
        PhantomVideo::builder(BodyPart::LungChest)
            .resolution(Resolution::new(128, 96))
            .seed(5)
            .build()
            .render(0)
    }

    #[test]
    fn uniform_plan_partitions_exactly() {
        let rect = Rect::frame(640, 480);
        for (c, r) in [(1, 1), (2, 2), (5, 3), (5, 4), (4, 6), (5, 6)] {
            let plan = FramePlan::uniform(rect, c, r, TileConfig::default());
            assert_eq!(plan.tile_count(), c * r);
            assert!(plan.validate(&rect).is_ok());
        }
    }

    #[test]
    fn validate_catches_overlap_and_gap() {
        let rect = Rect::frame(64, 64);
        let cfg = TileConfig::default();
        // Gap: only half covered.
        let plan = FramePlan {
            tiles: vec![Rect::new(0, 0, 64, 32)],
            configs: vec![cfg],
        };
        assert!(plan.validate(&rect).unwrap_err().contains("cover"));
        // Overlap.
        let plan = FramePlan {
            tiles: vec![Rect::new(0, 0, 64, 40), Rect::new(0, 32, 64, 32)],
            configs: vec![cfg, cfg],
        };
        assert!(plan.validate(&rect).is_err());
        // Misaligned.
        let plan = FramePlan {
            tiles: vec![Rect::new(0, 0, 60, 64), Rect::new(60, 0, 4, 64)],
            configs: vec![cfg, cfg],
        };
        assert!(plan.validate(&rect).unwrap_err().contains("8-aligned"));
    }

    #[test]
    fn encode_frame_stitches_full_reconstruction() {
        let f = frame();
        let plan = FramePlan::uniform(
            f.y().bounds(),
            2,
            2,
            TileConfig::with_qp(Qp::new(22).unwrap()),
        );
        let encoded = encode_frame(
            &f,
            &[],
            FrameKind::Intra,
            0,
            &plan,
            &EncoderConfig::default(),
            false,
        );
        assert_eq!(encoded.stats.tiles.len(), 4);
        let psnr = frame_psnr(&f, &encoded.recon);
        assert!(psnr > 32.0, "stitched recon psnr {psnr}");
        assert!(!encoded.bytes.is_empty());
        // Stats PSNR must agree with the stitched reconstruction PSNR.
        assert!((encoded.stats.psnr() - psnr).abs() < 0.5);
    }

    #[test]
    fn parallel_and_serial_encode_identically() {
        let f = frame();
        let plan = FramePlan::uniform(
            f.y().bounds(),
            2,
            2,
            TileConfig::with_qp(Qp::new(32).unwrap()),
        );
        let a = encode_frame(
            &f,
            &[],
            FrameKind::Intra,
            0,
            &plan,
            &EncoderConfig::default(),
            false,
        );
        let b = encode_frame(
            &f,
            &[],
            FrameKind::Intra,
            0,
            &plan,
            &EncoderConfig::default(),
            true,
        );
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.recon, b.recon);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn more_tiles_same_frame_cover() {
        let f = frame();
        let rect = f.y().bounds();
        let p1 = FramePlan::uniform(rect, 1, 1, TileConfig::default());
        let p6 = FramePlan::uniform(rect, 3, 2, TileConfig::default());
        let total1: usize = p1.tiles.iter().map(Rect::area).sum();
        let total6: usize = p6.tiles.iter().map(Rect::area).sum();
        assert_eq!(total1, total6);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn bad_plan_panics_encode() {
        let f = frame();
        let plan = FramePlan {
            tiles: vec![Rect::new(0, 0, 64, 64)],
            configs: vec![TileConfig::default()],
        };
        encode_frame(
            &f,
            &[],
            FrameKind::Intra,
            0,
            &plan,
            &EncoderConfig::default(),
            false,
        );
    }
}

//! Whole-frame encoding: tile partition validation, executor-driven
//! per-tile encoding and reconstruction stitching.

use crate::config::{EncoderConfig, TileConfig};
use crate::executor::{ScopedExecutor, SerialExecutor, TileExecutor, TileJob};
use crate::stats::FrameStats;
use crate::tile::encode_tile;
use medvt_frame::{find_overlap, Frame, FrameKind, Rect};
use medvt_motion::MotionVector;
use std::fmt;

/// A violated [`FramePlan`] invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The plan has no tiles at all.
    NoTiles,
    /// `tiles` and `configs` lengths differ.
    ConfigMismatch {
        /// Number of tiles.
        tiles: usize,
        /// Number of configs.
        configs: usize,
    },
    /// A tile has zero area.
    EmptyTile {
        /// The offending tile.
        tile: Rect,
    },
    /// A tile reaches outside the frame.
    OutsideFrame {
        /// The offending tile.
        tile: Rect,
        /// The frame bounds.
        frame: Rect,
    },
    /// A tile is not aligned to the 8-sample coding grid.
    Misaligned {
        /// The offending tile.
        tile: Rect,
    },
    /// Tiles cover more or less area than the frame (gap or overlap).
    CoverageMismatch {
        /// Samples covered by the tiles.
        covered: usize,
        /// Samples in the frame.
        frame: usize,
    },
    /// Two tiles overlap.
    Overlap {
        /// First tile.
        a: Rect,
        /// Second tile.
        b: Rect,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoTiles => write!(f, "plan has no tiles"),
            PlanError::ConfigMismatch { tiles, configs } => {
                write!(f, "{tiles} tiles but {configs} configs")
            }
            PlanError::EmptyTile { tile } => write!(f, "empty tile {tile}"),
            PlanError::OutsideFrame { tile, frame } => {
                write!(f, "tile {tile} outside frame {frame}")
            }
            PlanError::Misaligned { tile } => write!(f, "tile {tile} not 8-aligned"),
            PlanError::CoverageMismatch { covered, frame } => {
                write!(f, "tiles cover {covered} samples, frame has {frame}")
            }
            PlanError::Overlap { a, b } => write!(f, "tiles {a} and {b} overlap"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The tiling and per-tile configurations for one frame — what the
/// content-aware pipeline produces per GOP and the encoder consumes
/// per frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FramePlan {
    /// Tile rectangles (must exactly partition the frame on the
    /// 8-sample grid).
    pub tiles: Vec<Rect>,
    /// Per-tile configuration, same order and length as `tiles`.
    pub configs: Vec<TileConfig>,
}

impl FramePlan {
    /// A uniform `cols x rows` plan with one shared configuration.
    ///
    /// # Panics
    ///
    /// Panics when the grid does not divide the frame into 8-aligned
    /// tiles (see [`FramePlan::validate`]).
    pub fn uniform(frame: Rect, cols: usize, rows: usize, config: TileConfig) -> Self {
        let tiles = split_aligned(frame, cols, rows);
        let configs = vec![config; tiles.len()];
        let plan = Self { tiles, configs };
        plan.validate(&frame).expect("uniform plan must be valid");
        plan
    }

    /// Validates that the plan exactly partitions `frame` with
    /// 8-aligned tiles and one config per tile.
    ///
    /// Overlap detection is an O(n log n) sweep over tile edges (the
    /// former pairwise check was O(n²) and dominated validation for
    /// fine tilings).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a typed [`PlanError`].
    pub fn validate(&self, frame: &Rect) -> Result<(), PlanError> {
        if self.tiles.is_empty() {
            return Err(PlanError::NoTiles);
        }
        if self.tiles.len() != self.configs.len() {
            return Err(PlanError::ConfigMismatch {
                tiles: self.tiles.len(),
                configs: self.configs.len(),
            });
        }
        let mut area = 0usize;
        for t in &self.tiles {
            if t.is_empty() {
                return Err(PlanError::EmptyTile { tile: *t });
            }
            if !frame.contains_rect(t) {
                return Err(PlanError::OutsideFrame {
                    tile: *t,
                    frame: *frame,
                });
            }
            if t.x % 8 != 0 || t.y % 8 != 0 || t.w % 8 != 0 || t.h % 8 != 0 {
                return Err(PlanError::Misaligned { tile: *t });
            }
            area += t.area();
        }
        if area != frame.area() {
            return Err(PlanError::CoverageMismatch {
                covered: area,
                frame: frame.area(),
            });
        }
        if let Some((a, b)) = find_overlap(&self.tiles) {
            return Err(PlanError::Overlap { a, b });
        }
        Ok(())
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }
}

/// Splits `frame` into a `cols x rows` grid whose interior boundaries
/// snap to the 8-sample grid (HEVC tiles snap to CTUs; 8 is this
/// substrate's coding granularity).
///
/// # Panics
///
/// Panics when the frame is too small for the requested grid.
pub fn split_aligned(frame: Rect, cols: usize, rows: usize) -> Vec<Rect> {
    assert!(cols > 0 && rows > 0, "grid must be non-empty");
    let xs = aligned_axis(frame.x, frame.w, cols);
    let ys = aligned_axis(frame.y, frame.h, rows);
    let mut tiles = Vec::with_capacity(cols * rows);
    for (y, h) in &ys {
        for (x, w) in &xs {
            tiles.push(Rect::new(*x, *y, *w, *h));
        }
    }
    tiles
}

fn aligned_axis(origin: usize, len: usize, n: usize) -> Vec<(usize, usize)> {
    assert!(
        len / 8 >= n,
        "cannot split {len} samples into {n} tiles of >=8 samples"
    );
    let units = len / 8; // length is a multiple of 8 for supported frames
    assert!(len.is_multiple_of(8), "frame dimension {len} not 8-aligned");
    let base = units / n;
    let extra = units % n;
    let mut out = Vec::with_capacity(n);
    let mut pos = origin;
    for i in 0..n {
        let span = (base + usize::from(i < extra)) * 8;
        out.push((pos, span));
        pos += span;
    }
    out
}

/// An encoded frame: reconstruction, statistics, per-tile dominant
/// motion and the bitstream.
#[derive(Debug, Clone)]
pub struct EncodedFrame {
    /// The reconstructed picture (what a decoder would output), used
    /// as reference for later frames.
    pub recon: Frame,
    /// Per-tile statistics.
    pub stats: FrameStats,
    /// Median motion vector per tile, the direction later GOP frames
    /// inherit.
    pub dominant_mvs: Vec<MotionVector>,
    /// Concatenated tile bitstreams.
    pub bytes: Vec<u8>,
}

/// Encodes one frame according to `plan`.
///
/// With `parallel` set, tiles are encoded on unpinned scoped threads.
/// For placement-aware execution on a persistent worker pool, use
/// [`encode_frame_with`] and a runtime executor.
///
/// # Panics
///
/// Panics when the plan fails [`FramePlan::validate`] or `refs` is
/// empty for an inter `kind`.
pub fn encode_frame(
    original: &Frame,
    refs: &[&Frame],
    kind: FrameKind,
    poc: usize,
    plan: &FramePlan,
    ecfg: &EncoderConfig,
    parallel: bool,
) -> EncodedFrame {
    if parallel && plan.tiles.len() > 1 {
        encode_frame_with(original, refs, kind, poc, plan, ecfg, &ScopedExecutor, None)
    } else {
        encode_frame_with(original, refs, kind, poc, plan, ecfg, &SerialExecutor, None)
    }
}

/// Encodes one frame, delegating tile execution to `executor`.
///
/// `assignment`, when given, maps each tile index to the core that
/// must run it (what `sched::place_threads` decided); executors
/// without core affinity ignore it, and placement-aware executors
/// compute their own assignment from the jobs' cost hints when it is
/// `None`.
///
/// Tile encoding is deterministic and tiles are independent, so every
/// conforming executor produces bit-identical frames.
///
/// # Panics
///
/// Panics when the plan fails [`FramePlan::validate`], `assignment`
/// has the wrong length, or `refs` is empty for an inter `kind`.
#[allow(clippy::too_many_arguments)]
pub fn encode_frame_with(
    original: &Frame,
    refs: &[&Frame],
    kind: FrameKind,
    poc: usize,
    plan: &FramePlan,
    ecfg: &EncoderConfig,
    executor: &dyn TileExecutor,
    assignment: Option<&[usize]>,
) -> EncodedFrame {
    let frame_rect = original.y().bounds();
    plan.validate(&frame_rect)
        .expect("frame plan must partition the frame");
    if let Some(a) = assignment {
        assert_eq!(
            a.len(),
            plan.tiles.len(),
            "one core assignment per tile required"
        );
    }
    let jobs: Vec<TileJob<'_>> = plan
        .tiles
        .iter()
        .zip(&plan.configs)
        .enumerate()
        .map(|(index, (tile, cfg))| {
            let tile = *tile;
            let cfg = *cfg;
            TileJob {
                index,
                core: assignment.map(|a| a[index]),
                cost_hint: tile.area() as f64,
                run: Box::new(move || encode_tile(original, refs, kind, tile, &cfg, ecfg)),
            }
        })
        .collect();
    // Each tile job runs `encode_tile`, which draws its per-block
    // working memory from the executing thread's scratch — persistent
    // pool workers therefore stop allocating per block after their
    // first tile.
    let outcomes = executor.execute(jobs);
    assert_eq!(
        outcomes.len(),
        plan.tiles.len(),
        "executor must return one outcome per tile"
    );

    // Stitch tile reconstructions into the frame reconstruction.
    let mut recon = Frame::black(original.resolution());
    let mut stats = FrameStats {
        poc,
        tiles: Vec::with_capacity(outcomes.len()),
    };
    let mut dominant_mvs = Vec::with_capacity(outcomes.len());
    let mut bytes = Vec::with_capacity(outcomes.iter().map(|o| o.bytes.len()).sum());
    for (tile, outcome) in plan.tiles.iter().zip(outcomes) {
        recon.y_mut().write_rect(tile, outcome.recon_y.samples());
        let c_rect = Rect::new(tile.x / 2, tile.y / 2, tile.w / 2, tile.h / 2);
        recon.u_mut().write_rect(&c_rect, outcome.recon_u.samples());
        recon.v_mut().write_rect(&c_rect, outcome.recon_v.samples());
        stats.tiles.push(outcome.stats);
        dominant_mvs.push(outcome.dominant_mv);
        bytes.extend_from_slice(&outcome.bytes);
    }
    EncodedFrame {
        recon,
        stats,
        dominant_mvs,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Qp;
    use medvt_frame::quality::frame_psnr;
    use medvt_frame::synth::{BodyPart, PhantomVideo};
    use medvt_frame::Resolution;

    fn frame() -> Frame {
        PhantomVideo::builder(BodyPart::LungChest)
            .resolution(Resolution::new(128, 96))
            .seed(5)
            .build()
            .render(0)
    }

    #[test]
    fn uniform_plan_partitions_exactly() {
        let rect = Rect::frame(640, 480);
        for (c, r) in [(1, 1), (2, 2), (5, 3), (5, 4), (4, 6), (5, 6)] {
            let plan = FramePlan::uniform(rect, c, r, TileConfig::default());
            assert_eq!(plan.tile_count(), c * r);
            assert!(plan.validate(&rect).is_ok());
        }
    }

    #[test]
    fn validate_catches_overlap_and_gap() {
        let rect = Rect::frame(64, 64);
        let cfg = TileConfig::default();
        // Gap: only half covered.
        let plan = FramePlan {
            tiles: vec![Rect::new(0, 0, 64, 32)],
            configs: vec![cfg],
        };
        assert!(matches!(
            plan.validate(&rect),
            Err(PlanError::CoverageMismatch { .. })
        ));
        assert!(plan
            .validate(&rect)
            .unwrap_err()
            .to_string()
            .contains("cover"));
        // Overlap.
        let plan = FramePlan {
            tiles: vec![Rect::new(0, 0, 64, 40), Rect::new(0, 32, 64, 32)],
            configs: vec![cfg, cfg],
        };
        assert!(plan.validate(&rect).is_err());
        // Misaligned.
        let plan = FramePlan {
            tiles: vec![Rect::new(0, 0, 60, 64), Rect::new(60, 0, 4, 64)],
            configs: vec![cfg, cfg],
        };
        assert!(matches!(
            plan.validate(&rect),
            Err(PlanError::Misaligned { .. })
        ));
        assert!(plan
            .validate(&rect)
            .unwrap_err()
            .to_string()
            .contains("8-aligned"));
    }

    #[test]
    fn sweep_detects_overlap_with_exact_coverage() {
        // Area matches the frame but two tiles overlap while another
        // region is uncovered — the case a pure area check misses.
        let rect = Rect::frame(64, 64);
        let cfg = TileConfig::default();
        let plan = FramePlan {
            tiles: vec![
                Rect::new(0, 0, 32, 64),
                Rect::new(16, 0, 32, 64), // overlaps the first
            ],
            configs: vec![cfg, cfg],
        };
        assert!(matches!(
            plan.validate(&rect),
            Err(PlanError::Overlap { .. })
        ));
    }

    #[test]
    fn sweep_accepts_touching_tiles_and_staggered_rows() {
        let rect = Rect::frame(96, 64);
        let cfg = TileConfig::default();
        // Irregular but exact partition: a wide top strip over two
        // bottom tiles with a different split point.
        let plan = FramePlan {
            tiles: vec![
                Rect::new(0, 0, 96, 32),
                Rect::new(0, 32, 40, 32),
                Rect::new(40, 32, 56, 32),
            ],
            configs: vec![cfg, cfg, cfg],
        };
        assert!(plan.validate(&rect).is_ok());
    }

    #[test]
    fn encode_frame_stitches_full_reconstruction() {
        let f = frame();
        let plan = FramePlan::uniform(
            f.y().bounds(),
            2,
            2,
            TileConfig::with_qp(Qp::new(22).unwrap()),
        );
        let encoded = encode_frame(
            &f,
            &[],
            FrameKind::Intra,
            0,
            &plan,
            &EncoderConfig::default(),
            false,
        );
        assert_eq!(encoded.stats.tiles.len(), 4);
        let psnr = frame_psnr(&f, &encoded.recon);
        assert!(psnr > 32.0, "stitched recon psnr {psnr}");
        assert!(!encoded.bytes.is_empty());
        // Stats PSNR must agree with the stitched reconstruction PSNR.
        assert!((encoded.stats.psnr() - psnr).abs() < 0.5);
    }

    #[test]
    fn parallel_and_serial_encode_identically() {
        let f = frame();
        let plan = FramePlan::uniform(
            f.y().bounds(),
            2,
            2,
            TileConfig::with_qp(Qp::new(32).unwrap()),
        );
        let a = encode_frame(
            &f,
            &[],
            FrameKind::Intra,
            0,
            &plan,
            &EncoderConfig::default(),
            false,
        );
        let b = encode_frame(
            &f,
            &[],
            FrameKind::Intra,
            0,
            &plan,
            &EncoderConfig::default(),
            true,
        );
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.recon, b.recon);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn more_tiles_same_frame_cover() {
        let f = frame();
        let rect = f.y().bounds();
        let p1 = FramePlan::uniform(rect, 1, 1, TileConfig::default());
        let p6 = FramePlan::uniform(rect, 3, 2, TileConfig::default());
        let total1: usize = p1.tiles.iter().map(Rect::area).sum();
        let total6: usize = p6.tiles.iter().map(Rect::area).sum();
        assert_eq!(total1, total6);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn bad_plan_panics_encode() {
        let f = frame();
        let plan = FramePlan {
            tiles: vec![Rect::new(0, 0, 64, 64)],
            configs: vec![TileConfig::default()],
        };
        encode_frame(
            &f,
            &[],
            FrameKind::Intra,
            0,
            &plan,
            &EncoderConfig::default(),
            false,
        );
    }
}

//! The tile-execution seam: who runs a frame's tile work units, and on
//! which core.
//!
//! The paper's Algorithm 2 decides *which core runs which tile
//! thread*; the encoder itself must not care. [`encode_frame_with`]
//! therefore hands every tile as a [`TileJob`] — a closure plus an
//! optional core assignment and a deterministic cost hint — to a
//! [`TileExecutor`]. Three executors exist:
//!
//! * [`SerialExecutor`] — runs jobs in tile order on the calling
//!   thread (the reference path; all others must match it bit-exactly);
//! * [`ScopedExecutor`] — one scoped thread per tile, unpinned (the
//!   legacy `parallel=true` behaviour, formerly ad-hoc `crossbeam`
//!   spawning);
//! * `medvt_runtime::ThreadPoolBackend` — the placement-aware
//!   persistent worker pool that honours `sched::place_threads`
//!   core assignments.
//!
//! [`encode_frame_with`]: crate::encode_frame_with

use crate::tile::TileOutcome;

/// One tile's encoding work, ready to run on any thread.
pub struct TileJob<'scope> {
    /// Tile index within the frame plan (output order key).
    pub index: usize,
    /// Core assignment from the scheduler, when one exists. Executors
    /// without core affinity may ignore it.
    pub core: Option<usize>,
    /// Deterministic pre-encode cost proxy (luma samples in the tile),
    /// for executors that compute their own placement.
    pub cost_hint: f64,
    /// The work: encodes the tile and returns its outcome.
    pub run: Box<dyn FnOnce() -> TileOutcome + Send + 'scope>,
}

impl std::fmt::Debug for TileJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TileJob")
            .field("index", &self.index)
            .field("core", &self.core)
            .field("cost_hint", &self.cost_hint)
            .finish_non_exhaustive()
    }
}

/// Executes a frame's tile jobs, returning outcomes in tile order.
///
/// Implementations must return exactly one outcome per job, ordered by
/// [`TileJob::index`], and must run each job exactly once — tile
/// encoding is deterministic, so any conforming executor produces
/// bit-identical frames.
pub trait TileExecutor: Sync {
    /// Runs all jobs and collects their outcomes in tile order.
    fn execute<'scope>(&self, jobs: Vec<TileJob<'scope>>) -> Vec<TileOutcome>;
}

/// Runs tiles one after another on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl TileExecutor for SerialExecutor {
    fn execute<'scope>(&self, jobs: Vec<TileJob<'scope>>) -> Vec<TileOutcome> {
        let mut out: Vec<(usize, TileOutcome)> =
            jobs.into_iter().map(|j| (j.index, (j.run)())).collect();
        out.sort_by_key(|(i, _)| *i);
        out.into_iter().map(|(_, o)| o).collect()
    }
}

/// Spawns one scoped thread per tile (unpinned) — the legacy parallel
/// path, now on `std::thread::scope` instead of `crossbeam`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScopedExecutor;

impl TileExecutor for ScopedExecutor {
    fn execute<'scope>(&self, jobs: Vec<TileJob<'scope>>) -> Vec<TileOutcome> {
        if jobs.len() <= 1 {
            // Nothing to parallelize: skip the thread spawn.
            return SerialExecutor.execute(jobs);
        }
        let mut indexed: Vec<(usize, TileOutcome)> = std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|j| (j.index, s.spawn(j.run)))
                .collect();
            handles
                .into_iter()
                .map(|(i, h)| (i, h.join().expect("tile thread panicked")))
                .collect()
        });
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, o)| o).collect()
    }
}

//! Encoding statistics: the per-tile and per-frame measurements the
//! workload estimator, the thread allocator and the experiment tables
//! consume.

use medvt_frame::Rect;
use serde::{Deserialize, Serialize};

/// Operation counts and outcomes of encoding one tile of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TileStats {
    /// Tile geometry.
    pub rect: Rect,
    /// Bits emitted for this tile.
    pub bits: u64,
    /// Sum of squared reconstruction error over luma samples.
    pub luma_ssd: u64,
    /// Luma samples in the tile.
    pub luma_samples: u64,
    /// Motion-search candidates evaluated x block samples — the number
    /// of SAD sample operations performed.
    pub sad_samples: u64,
    /// Samples pushed through forward+inverse transform.
    pub transform_samples: u64,
    /// Blocks coded in intra mode.
    pub intra_blocks: u32,
    /// Blocks coded in inter mode.
    pub inter_blocks: u32,
}

impl TileStats {
    /// Creates empty statistics for a tile.
    pub fn new(rect: Rect) -> Self {
        Self {
            rect,
            luma_samples: rect.area() as u64,
            ..Self::default()
        }
    }

    /// Luma PSNR of the reconstructed tile in dB (infinite when
    /// lossless).
    pub fn psnr(&self) -> f64 {
        if self.luma_ssd == 0 || self.luma_samples == 0 {
            f64::INFINITY
        } else {
            let mse = self.luma_ssd as f64 / self.luma_samples as f64;
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }

    /// Merges another tile's numbers into this one (used for frame and
    /// sequence aggregation).
    pub fn absorb(&mut self, other: &TileStats) {
        self.bits += other.bits;
        self.luma_ssd += other.luma_ssd;
        self.luma_samples += other.luma_samples;
        self.sad_samples += other.sad_samples;
        self.transform_samples += other.transform_samples;
        self.intra_blocks += other.intra_blocks;
        self.inter_blocks += other.inter_blocks;
    }
}

/// Statistics of one encoded frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FrameStats {
    /// Display-order index of the frame.
    pub poc: usize,
    /// Per-tile statistics, in tiling order.
    pub tiles: Vec<TileStats>,
}

impl FrameStats {
    /// Sums tile statistics into one aggregate.
    pub fn total(&self) -> TileStats {
        let mut acc = TileStats::default();
        for t in &self.tiles {
            acc.absorb(t);
        }
        acc
    }

    /// Frame luma PSNR in dB.
    pub fn psnr(&self) -> f64 {
        self.total().psnr()
    }

    /// Frame bits.
    pub fn bits(&self) -> u64 {
        self.tiles.iter().map(|t| t.bits).sum()
    }
}

/// Statistics of an encoded sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SequenceStats {
    /// Per-frame statistics in display order.
    pub frames: Vec<FrameStats>,
    /// Nominal frame rate, for bitrate computation.
    pub fps: f64,
}

impl SequenceStats {
    /// Mean luma PSNR across frames, in dB. Lossless frames saturate at
    /// 99 dB so a single perfect frame does not produce an infinite mean.
    pub fn mean_psnr(&self) -> f64 {
        if self.frames.is_empty() {
            return f64::NAN;
        }
        let sum: f64 = self.frames.iter().map(|f| f.psnr().min(99.0)).sum();
        sum / self.frames.len() as f64
    }

    /// Total bits of the sequence.
    pub fn total_bits(&self) -> u64 {
        self.frames.iter().map(|f| f.bits()).sum()
    }

    /// Average bitrate in bits per second.
    pub fn bitrate_bps(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let duration = self.frames.len() as f64 / self.fps;
        self.total_bits() as f64 / duration
    }

    /// Average bitrate in megabits per second (the unit of Table II).
    pub fn bitrate_mbps(&self) -> f64 {
        self.bitrate_bps() / 1e6
    }

    /// Total motion-search sample operations — the ME complexity the
    /// Table I speedups compare.
    pub fn total_sad_samples(&self) -> u64 {
        self.frames.iter().map(|f| f.total().sad_samples).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(bits: u64, ssd: u64, samples: u64) -> TileStats {
        TileStats {
            rect: Rect::new(0, 0, 8, 8),
            bits,
            luma_ssd: ssd,
            luma_samples: samples,
            sad_samples: 10,
            transform_samples: samples,
            intra_blocks: 1,
            inter_blocks: 2,
        }
    }

    #[test]
    fn psnr_computation() {
        let t = tile(100, 6400, 64); // mse = 100 → 28.13 dB
        assert!((t.psnr() - 28.13).abs() < 0.01);
        let lossless = tile(100, 0, 64);
        assert!(lossless.psnr().is_infinite());
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = tile(100, 50, 64);
        a.absorb(&tile(200, 150, 64));
        assert_eq!(a.bits, 300);
        assert_eq!(a.luma_ssd, 200);
        assert_eq!(a.luma_samples, 128);
        assert_eq!(a.intra_blocks, 2);
        assert_eq!(a.inter_blocks, 4);
    }

    #[test]
    fn frame_aggregation() {
        let f = FrameStats {
            poc: 0,
            tiles: vec![tile(100, 640, 64), tile(50, 640, 64)],
        };
        assert_eq!(f.bits(), 150);
        let total = f.total();
        assert_eq!(total.luma_ssd, 1280);
        // mse = 1280/128 = 10 → psnr ≈ 38.13.
        assert!((f.psnr() - 38.13).abs() < 0.01);
    }

    #[test]
    fn sequence_bitrate() {
        let frame = FrameStats {
            poc: 0,
            tiles: vec![tile(24_000, 100, 64)],
        };
        let seq = SequenceStats {
            frames: vec![frame; 24],
            fps: 24.0,
        };
        // 24 frames x 24k bits over 1 s = 576 kbps.
        assert!((seq.bitrate_bps() - 576_000.0).abs() < 1e-6);
        assert!((seq.bitrate_mbps() - 0.576).abs() < 1e-9);
    }

    #[test]
    fn mean_psnr_saturates_lossless_frames() {
        let lossless = FrameStats {
            poc: 0,
            tiles: vec![tile(10, 0, 64)],
        };
        let seq = SequenceStats {
            frames: vec![lossless],
            fps: 24.0,
        };
        assert_eq!(seq.mean_psnr(), 99.0);
    }

    #[test]
    fn empty_sequence_is_nan_psnr_zero_rate() {
        let seq = SequenceStats {
            frames: vec![],
            fps: 24.0,
        };
        assert!(seq.mean_psnr().is_nan());
        assert_eq!(seq.bitrate_bps(), 0.0);
    }
}

//! Fixed-point integer DCT — the staged migration path away from the
//! `f64` transform.
//!
//! The basis is the orthonormal DCT-II matrix of [`super`] scaled by
//! `2^SHIFT` and rounded to integers (HEVC's core transform is built
//! the same way, at a different scale). Both matrix products run in
//! integer arithmetic with one rounding shift per stage, so results
//! are platform-exact by construction — no IEEE-754 determinism
//! argument needed — and the inner loops vectorize as integer lanes,
//! twice as many per register as `f64`.
//!
//! The path is **off by default** ([`super::TxPath::F64`]): switching
//! it on changes the emitted bitstream, so it carries its own pinned
//! goldens (`tests/encode_bit_identity.rs`) while the f64 goldens stay
//! frozen. Against the f64 path, forward coefficients and same-input
//! inverse reconstructions each differ by at most
//! [`MAX_ABS_DIFF_VS_F64`]; through quantization the reconstruction
//! bound widens by one quantization step because near-boundary
//! coefficients may flip a level (enforced by tests here and
//! documented in ARCHITECTURE.md).
//!
//! # Value ranges (why each accumulator width is safe)
//!
//! Inputs are prediction residuals in `[-1024, 1024]` (real residuals
//! are `[-255, 255]`; the slack covers experimentation). A basis row
//! has ℓ2 norm `2^SHIFT`, so by Cauchy–Schwarz a stage-1 forward
//! accumulator is bounded by `√n · 2^13 · 1024 < 2^29` — comfortably
//! `i32`. Forward stage 2 and inverse stage 1 stay below `2^30` by the
//! same argument; inverse stage 2 can reach `~2.3e9 > i32::MAX` in the
//! adversarial corner, so it accumulates in `i64`.

use super::{basis, check_size, TRANSFORM_SIZES};
use std::sync::OnceLock;

/// Fixed-point fraction bits of the integer basis.
pub const SHIFT: u32 = 13;

/// Documented bound on the per-sample divergence of the integer
/// transform pair from the f64 pair, across all transform sizes:
///
/// * forward coefficients differ by at most this much (measured worst
///   case 1.5 over broad random sweeps);
/// * inverting the *same* coefficients differs by at most this much
///   (measured worst case 2).
///
/// End-to-end through quantization, a coefficient that lands within
/// this bound of a dead-zone boundary can quantize to an adjacent
/// level, so the reconstruction bound becomes
/// `ceil(step_size(QP)) + MAX_ABS_DIFF_VS_F64` — enforced by
/// `int_path_tracks_f64_within_bound`.
pub const MAX_ABS_DIFF_VS_F64: i32 = 2;

const ROUND: i64 = 1 << (SHIFT - 1);

static INT_BASIS_CELLS: [OnceLock<Box<[i32]>>; 4] = [
    OnceLock::new(),
    OnceLock::new(),
    OnceLock::new(),
    OnceLock::new(),
];

static INT_BASIS_T_CELLS: [OnceLock<Box<[i32]>>; 4] = [
    OnceLock::new(),
    OnceLock::new(),
    OnceLock::new(),
    OnceLock::new(),
];

fn size_index(n: usize) -> usize {
    TRANSFORM_SIZES
        .iter()
        .position(|&s| s == n)
        .unwrap_or_else(|| panic!("unsupported transform size {n}; HEVC sizes are 4/8/16/32"))
}

/// `round(C · 2^SHIFT)`, row-major, cached per size. Entries fit
/// comfortably in i16 range (max `√2 · 2^12 ≈ 5793`) but are stored as
/// i32 for direct multiply-accumulate.
fn int_basis(n: usize) -> &'static [i32] {
    INT_BASIS_CELLS[size_index(n)].get_or_init(|| {
        basis(n)
            .iter()
            .map(|&v| (v * (1i64 << SHIFT) as f64).round() as i32)
            .collect()
    })
}

/// Transposed integer basis, cached so stride-1 rows feed the ikj
/// loops (same trick as the f64 path).
fn int_basis_t(n: usize) -> &'static [i32] {
    INT_BASIS_T_CELLS[size_index(n)].get_or_init(|| {
        let c = int_basis(n);
        let mut t = vec![0i32; n * n];
        for k in 0..n {
            for i in 0..n {
                t[i * n + k] = c[k * n + i];
            }
        }
        t.into_boxed_slice()
    })
}

/// Rounding right-shift by [`SHIFT`] (arithmetic, so deterministic for
/// negative values: round-half-up in two's complement).
#[inline]
fn descale(v: i64) -> i32 {
    ((v + ROUND) >> SHIFT) as i32
}

/// Forward integer DCT of an `n x n` residual block.
///
/// # Panics
///
/// Panics when `n` is unsupported or `input.len() != n * n`; debug
/// builds additionally check `|input| <= 1024` (the documented range
/// the accumulator-width proof relies on).
pub fn forward(n: usize, input: &[i32]) -> Vec<i32> {
    let mut out = Vec::new();
    let mut tmp = Vec::new();
    forward_into(n, input, &mut out, &mut tmp);
    out
}

/// Allocation-free [`forward`]: coefficients into `out`, stage-1
/// products into `tmp` (both resized to `n * n`).
///
/// # Panics
///
/// Panics when `n` is unsupported or `input.len() != n * n`.
pub fn forward_into(n: usize, input: &[i32], out: &mut Vec<i32>, tmp: &mut Vec<i32>) {
    check_size(n);
    assert_eq!(input.len(), n * n, "input must be {n}x{n}");
    debug_assert!(
        input.iter().all(|&x| x.abs() <= 1024),
        "residuals must stay in [-1024, 1024]"
    );
    let c = int_basis(n);
    let ct = int_basis_t(n);
    // tmp = (C * X) >> SHIFT, accumulated in i32 (bounded < 2^29).
    tmp.clear();
    tmp.resize(n * n, 0);
    for k in 0..n {
        let trow = &mut tmp[k * n..(k + 1) * n];
        for i in 0..n {
            let cki = c[k * n + i];
            let xrow = &input[i * n..(i + 1) * n];
            for (t, &x) in trow.iter_mut().zip(xrow) {
                *t += cki * x;
            }
        }
    }
    for t in tmp.iter_mut() {
        *t = descale(*t as i64);
    }
    // out = (tmp * C^T) >> SHIFT, accumulated in i32 (bounded < 2^30).
    out.clear();
    out.resize(n * n, 0);
    for k in 0..n {
        let orow = &mut out[k * n..(k + 1) * n];
        for j in 0..n {
            let tkj = tmp[k * n + j];
            let crow = &ct[j * n..(j + 1) * n];
            for (o, &cc) in orow.iter_mut().zip(crow) {
                *o += tkj * cc;
            }
        }
    }
    for o in out.iter_mut() {
        *o = descale(*o as i64);
    }
}

/// Inverse integer DCT, mapping coefficients back to residual samples.
///
/// # Panics
///
/// Panics when `n` is unsupported or `coeffs.len() != n * n`; debug
/// builds additionally check `|coeff| <= 255 * n + 512` (the range any
/// quantize/dequantize round trip of a real residual stays inside,
/// and the bound the stage-1 `i32` accumulation is proven against).
pub fn inverse(n: usize, coeffs: &[i32]) -> Vec<i32> {
    let mut out = Vec::new();
    let mut tmp = Vec::new();
    let mut wide = Vec::new();
    inverse_into(n, coeffs, &mut out, &mut tmp, &mut wide);
    out
}

/// Allocation-free [`inverse`]: residual samples into `out`, stage-1
/// products into `tmp`, stage-2 `i64` accumulators into `wide` (all
/// resized to `n * n`).
///
/// # Panics
///
/// Panics when `n` is unsupported or `coeffs.len() != n * n`.
pub fn inverse_into(
    n: usize,
    coeffs: &[i32],
    out: &mut Vec<i32>,
    tmp: &mut Vec<i32>,
    wide: &mut Vec<i64>,
) {
    check_size(n);
    assert_eq!(coeffs.len(), n * n, "coeffs must be {n}x{n}");
    debug_assert!(
        coeffs.iter().all(|&y| y.abs() <= 255 * n as i32 + 512),
        "coefficients outside the dequantized range"
    );
    let c = int_basis(n);
    let ct = int_basis_t(n);
    // tmp = (C^T * Y) >> SHIFT, i32 (|Σ| < √n · 2^13 · 8672 < 2^29).
    tmp.clear();
    tmp.resize(n * n, 0);
    for i in 0..n {
        let trow = &mut tmp[i * n..(i + 1) * n];
        for k in 0..n {
            let cik = ct[i * n + k];
            let yrow = &coeffs[k * n..(k + 1) * n];
            for (t, &y) in trow.iter_mut().zip(yrow) {
                *t += cik * y;
            }
        }
    }
    for t in tmp.iter_mut() {
        *t = descale(*t as i64);
    }
    // wide = tmp * C; the only product that can exceed i32, so it
    // accumulates in i64 before the final descale.
    wide.clear();
    wide.resize(n * n, 0);
    for i in 0..n {
        let wrow = &mut wide[i * n..(i + 1) * n];
        for l in 0..n {
            let til = tmp[i * n + l] as i64;
            let crow = &c[l * n..(l + 1) * n];
            for (w, &cc) in wrow.iter_mut().zip(crow) {
                *w += til * cc as i64;
            }
        }
    }
    out.clear();
    out.extend(wide.iter().map(|&w| descale(w)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Qp;
    use crate::quant;
    use proptest::prelude::*;

    fn textured(n: usize) -> Vec<i32> {
        (0..n * n)
            .map(|i| (((i * 73 + 11) % 511) as i32 - 255) * if i % 3 == 0 { -1 } else { 1 })
            .collect()
    }

    #[test]
    fn dc_block_concentrates_energy() {
        let input = vec![10i32; 64];
        let coeffs = forward(8, &input);
        // Orthonormal scaling: DC = 10 * 8 = 80 (± rounding).
        assert!((coeffs[0] - 80).abs() <= 1, "dc={}", coeffs[0]);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() <= 1, "ac[{i}]={c}");
        }
    }

    #[test]
    fn round_trip_error_is_tiny() {
        for n in TRANSFORM_SIZES {
            let input = textured(n);
            let rec = inverse(n, &forward(n, &input));
            let max = input
                .iter()
                .zip(&rec)
                .map(|(a, b)| (a - b).abs())
                .max()
                .unwrap();
            assert!(
                max <= MAX_ABS_DIFF_VS_F64,
                "n={n} max round-trip error {max}"
            );
        }
    }

    #[test]
    fn matches_f64_coefficients_closely() {
        for n in TRANSFORM_SIZES {
            let input = textured(n);
            let int_coeffs = forward(n, &input);
            let f64_coeffs = super::super::forward(n, &input);
            for (i, (&ic, fc)) in int_coeffs.iter().zip(&f64_coeffs).enumerate() {
                assert!(
                    (ic as f64 - fc).abs() <= MAX_ABS_DIFF_VS_F64 as f64,
                    "n={n} coeff {i}: int {ic} vs f64 {fc}"
                );
            }
        }
    }

    #[test]
    fn same_coefficients_invert_within_bound() {
        // The transform-only half of the MAX_ABS_DIFF_VS_F64 contract:
        // inverting identical (rounded) coefficients through both
        // paths stays within the bound — no quantization involved.
        for n in TRANSFORM_SIZES {
            let input = textured(n);
            let fc = super::super::forward(n, &input);
            let rounded: Vec<i32> = fc.iter().map(|&c| c.round() as i32).collect();
            let frec = super::super::inverse(n, &fc);
            let irec = inverse(n, &rounded);
            for (i, (&a, b)) in irec.iter().zip(&frec).enumerate() {
                let diff = (a as f64 - b.round()).abs() as i32;
                assert!(
                    diff <= MAX_ABS_DIFF_VS_F64,
                    "n={n} sample {i}: int {a} vs f64 {b} (diff {diff})"
                );
            }
        }
    }

    #[test]
    fn int_path_tracks_f64_within_bound() {
        // End-to-end through quantization: near-boundary coefficients
        // may flip one level, so the bound widens by one step.
        for n in TRANSFORM_SIZES {
            let input = textured(n);
            for qp in [
                Qp::new(22).unwrap(),
                Qp::new(32).unwrap(),
                Qp::new(42).unwrap(),
            ] {
                let bound = qp.step_size().ceil() as i32 + MAX_ABS_DIFF_VS_F64;
                // f64 path.
                let fc = super::super::forward(n, &input);
                let levels = quant::quantize(&fc, qp);
                let frec = super::super::inverse(n, &quant::dequantize(&levels, qp));
                // Integer path.
                let ic = forward(n, &input);
                let ilevels = quant::quantize_int(&ic, qp);
                let mut rec_i = Vec::new();
                quant::dequantize_int_into(&ilevels, qp, &mut rec_i);
                let irec = inverse(n, &rec_i);
                for (i, (&a, b)) in irec.iter().zip(&frec).enumerate() {
                    let diff = (a as f64 - b.round()).abs() as i32;
                    assert!(
                        diff <= bound,
                        "n={n} {qp} sample {i}: int {a} vs f64 {b} (diff {diff} > {bound})"
                    );
                }
            }
        }
    }

    #[test]
    fn extreme_residuals_do_not_overflow() {
        // ±255 checkerboards and solid blocks exercise the largest
        // accumulator magnitudes at every size.
        for n in TRANSFORM_SIZES {
            for pattern in [0usize, 1, 2] {
                let input: Vec<i32> = (0..n * n)
                    .map(|i| match pattern {
                        0 => 255,
                        1 => -255,
                        _ => {
                            if (i / n + i % n) % 2 == 0 {
                                255
                            } else {
                                -255
                            }
                        }
                    })
                    .collect();
                let rec = inverse(n, &forward(n, &input));
                let max = input
                    .iter()
                    .zip(&rec)
                    .map(|(a, b)| (a - b).abs())
                    .max()
                    .unwrap();
                assert!(
                    max <= MAX_ABS_DIFF_VS_F64,
                    "n={n} pattern={pattern} error {max}"
                );
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        let mut out = vec![7i32; 3]; // dirty buffers must not leak through
        let mut tmp = vec![9i32; 5];
        let mut wide = vec![11i64; 2];
        for n in TRANSFORM_SIZES {
            let input = textured(n);
            forward_into(n, &input, &mut out, &mut tmp);
            assert_eq!(out, forward(n, &input), "forward_into diverged at n={n}");
            let coeffs = out.clone();
            inverse_into(n, &coeffs, &mut out, &mut tmp, &mut wide);
            assert_eq!(out, inverse(n, &coeffs), "inverse_into diverged at n={n}");
        }
    }

    #[test]
    fn basis_tables_are_shared_statics() {
        assert!(std::ptr::eq(int_basis(8), int_basis(8)));
        assert!(std::ptr::eq(int_basis_t(8), int_basis_t(8)));
    }

    #[test]
    #[should_panic(expected = "unsupported transform size")]
    fn rejects_odd_sizes() {
        forward(6, &[0; 36]);
    }

    proptest! {
        #[test]
        fn prop_round_trip_8(input in proptest::collection::vec(-255i32..=255, 64)) {
            let rec = inverse(8, &forward(8, &input));
            for (a, b) in input.iter().zip(&rec) {
                prop_assert!((a - b).abs() <= MAX_ABS_DIFF_VS_F64);
            }
        }

        #[test]
        fn prop_linearity_is_near(
            a in proptest::collection::vec(-128i32..=127, 16),
            b in proptest::collection::vec(-128i32..=127, 16),
        ) {
            // Integer rounding breaks exact linearity, but only by ±1
            // per stage.
            let sum: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let fa = forward(4, &a);
            let fb = forward(4, &b);
            let fsum = forward(4, &sum);
            for i in 0..16 {
                prop_assert!((fa[i] + fb[i] - fsum[i]).abs() <= 2);
            }
        }
    }
}

//! Separable 2-D DCT-II used as the coding transform.
//!
//! HEVC's core transform is an integer approximation of the DCT-II at
//! sizes 4–32. This substrate uses the exact orthonormal DCT-II in
//! `f64` (bit-deterministic under IEEE-754), which keeps the forward /
//! inverse pair perfectly invertible so the only reconstruction error
//! is quantization — exactly the property the rate/distortion
//! behaviour of the experiments depends on.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Supported transform sizes (HEVC core transform sizes).
pub const TRANSFORM_SIZES: [usize; 4] = [4, 8, 16, 32];

/// Orthonormal DCT-II basis matrix of size `n x n`, row-major, cached.
fn basis(n: usize) -> &'static [f64] {
    static CACHE: OnceLock<Mutex<HashMap<usize, &'static [f64]>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().expect("basis cache poisoned");
    if let Some(&m) = guard.get(&n) {
        return m;
    }
    let mut m = vec![0.0f64; n * n];
    let scale0 = (1.0 / n as f64).sqrt();
    let scale = (2.0 / n as f64).sqrt();
    for k in 0..n {
        for i in 0..n {
            let s = if k == 0 { scale0 } else { scale };
            m[k * n + i] =
                s * ((std::f64::consts::PI / n as f64) * (i as f64 + 0.5) * k as f64).cos();
        }
    }
    let leaked: &'static [f64] = Box::leak(m.into_boxed_slice());
    guard.insert(n, leaked);
    leaked
}

/// Validates a transform size.
///
/// # Panics
///
/// Panics when `n` is not one of [`TRANSFORM_SIZES`].
fn check_size(n: usize) {
    assert!(
        TRANSFORM_SIZES.contains(&n),
        "unsupported transform size {n}; HEVC sizes are 4/8/16/32"
    );
}

/// Forward 2-D DCT-II of an `n x n` residual block (row-major `i32`
/// samples), producing `f64` coefficients.
///
/// # Panics
///
/// Panics when `n` is unsupported or `input.len() != n * n`.
pub fn forward(n: usize, input: &[i32]) -> Vec<f64> {
    check_size(n);
    assert_eq!(input.len(), n * n, "input must be {n}x{n}");
    let c = basis(n);
    // tmp = C * X
    let mut tmp = vec![0.0f64; n * n];
    for k in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for i in 0..n {
                acc += c[k * n + i] * input[i * n + j] as f64;
            }
            tmp[k * n + j] = acc;
        }
    }
    // out = tmp * C^T
    let mut out = vec![0.0f64; n * n];
    for k in 0..n {
        for l in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += tmp[k * n + j] * c[l * n + j];
            }
            out[k * n + l] = acc;
        }
    }
    out
}

/// Inverse 2-D DCT-II, mapping coefficients back to residual samples
/// (`f64`, caller rounds).
///
/// # Panics
///
/// Panics when `n` is unsupported or `coeffs.len() != n * n`.
pub fn inverse(n: usize, coeffs: &[f64]) -> Vec<f64> {
    check_size(n);
    assert_eq!(coeffs.len(), n * n, "coeffs must be {n}x{n}");
    let c = basis(n);
    // tmp = C^T * Y
    let mut tmp = vec![0.0f64; n * n];
    for i in 0..n {
        for l in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += c[k * n + i] * coeffs[k * n + l];
            }
            tmp[i * n + l] = acc;
        }
    }
    // out = tmp * C
    let mut out = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..n {
                acc += tmp[i * n + l] * c[l * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dc_block_concentrates_energy() {
        let input = vec![10i32; 64];
        let coeffs = forward(8, &input);
        // DC coefficient = 10 * 8 (orthonormal scaling: sum/n * n = 80).
        assert!((coeffs[0] - 80.0).abs() < 1e-9, "dc={}", coeffs[0]);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-9, "ac[{i}]={c}");
        }
    }

    #[test]
    fn round_trip_is_exact_to_rounding() {
        for n in TRANSFORM_SIZES {
            let input: Vec<i32> = (0..n * n).map(|i| ((i * 37) % 511) as i32 - 255).collect();
            let rec = inverse(n, &forward(n, &input));
            for (a, b) in input.iter().zip(&rec) {
                assert!((*a as f64 - b).abs() < 1e-6, "n={n}");
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let input: Vec<i32> = (0..64).map(|i| (i * i % 97) - 48).collect();
        let coeffs = forward(8, &input);
        let e_spatial: f64 = input.iter().map(|&x| (x as f64) * (x as f64)).sum();
        let e_freq: f64 = coeffs.iter().map(|c| c * c).sum();
        assert!((e_spatial - e_freq).abs() / e_spatial < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unsupported transform size")]
    fn rejects_odd_sizes() {
        forward(6, &[0; 36]);
    }

    #[test]
    fn smooth_content_compacts_into_low_frequencies() {
        // A horizontal ramp: all energy in the first row of coefficients.
        let mut input = vec![0i32; 64];
        for r in 0..8 {
            for c in 0..8 {
                input[r * 8 + c] = c as i32 * 10;
            }
        }
        let coeffs = forward(8, &input);
        let low: f64 = coeffs[..8].iter().map(|c| c.abs()).sum();
        let high: f64 = coeffs[8..].iter().map(|c| c.abs()).sum();
        assert!(low > 10.0 * high, "low={low} high={high}");
    }

    proptest! {
        #[test]
        fn prop_round_trip_8(input in proptest::collection::vec(-255i32..=255, 64)) {
            let rec = inverse(8, &forward(8, &input));
            for (a, b) in input.iter().zip(&rec) {
                prop_assert!((*a as f64 - b).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_linearity(
            a in proptest::collection::vec(-128i32..=127, 16),
            b in proptest::collection::vec(-128i32..=127, 16),
        ) {
            let sum: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let fa = forward(4, &a);
            let fb = forward(4, &b);
            let fsum = forward(4, &sum);
            for i in 0..16 {
                prop_assert!((fa[i] + fb[i] - fsum[i]).abs() < 1e-6);
            }
        }
    }
}

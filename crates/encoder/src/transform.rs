//! Separable 2-D DCT-II used as the coding transform.
//!
//! HEVC's core transform is an integer approximation of the DCT-II at
//! sizes 4–32. This substrate uses the exact orthonormal DCT-II in
//! `f64` (bit-deterministic under IEEE-754), which keeps the forward /
//! inverse pair perfectly invertible so the only reconstruction error
//! is quantization — exactly the property the rate/distortion
//! behaviour of the experiments depends on.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

pub mod int;

/// Supported transform sizes (HEVC core transform sizes).
pub const TRANSFORM_SIZES: [usize; 4] = [4, 8, 16, 32];

/// Selects which transform arithmetic the residual coder runs.
///
/// The default stays [`TxPath::F64`] so every frozen bitstream golden
/// holds; [`TxPath::Int`] switches to the fixed-point path in
/// [`int`], which has its own pinned goldens and a bounded
/// max-abs-diff cross-check against the f64 path (see
/// [`int::MAX_ABS_DIFF_VS_F64`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TxPath {
    /// Exact orthonormal `f64` DCT-II — the golden default.
    #[default]
    F64,
    /// Fixed-point integer DCT approximation ([`int`]).
    Int,
}

/// One lock-free lazily-initialized basis table per transform size.
///
/// The former `Mutex<HashMap>` serialized every DCT call across all
/// worker threads (and could poison on panic); per-size `OnceLock`s
/// initialize at most once each, are wait-free after initialization,
/// and cannot poison. Concurrent first use races the (pure)
/// computation and every thread observes the same winning table.
static BASIS_CELLS: [OnceLock<Box<[f64]>>; 4] = [
    OnceLock::new(),
    OnceLock::new(),
    OnceLock::new(),
    OnceLock::new(),
];

fn compute_basis(n: usize) -> Box<[f64]> {
    let mut m = vec![0.0f64; n * n];
    let scale0 = (1.0 / n as f64).sqrt();
    let scale = (2.0 / n as f64).sqrt();
    for k in 0..n {
        for i in 0..n {
            let s = if k == 0 { scale0 } else { scale };
            m[k * n + i] =
                s * ((std::f64::consts::PI / n as f64) * (i as f64 + 0.5) * k as f64).cos();
        }
    }
    m.into_boxed_slice()
}

/// Orthonormal DCT-II basis matrix of size `n x n`, row-major, cached.
fn basis(n: usize) -> &'static [f64] {
    let idx = TRANSFORM_SIZES
        .iter()
        .position(|&s| s == n)
        .unwrap_or_else(|| panic!("unsupported transform size {n}; HEVC sizes are 4/8/16/32"));
    BASIS_CELLS[idx].get_or_init(|| compute_basis(n))
}

/// Transposed basis (`C^T`), cached separately so multiplications by
/// `C^T` read stride-1 rows. Element values are exact copies of
/// [`basis`], so results are bit-identical to indexing `C` columns.
static BASIS_T_CELLS: [OnceLock<Box<[f64]>>; 4] = [
    OnceLock::new(),
    OnceLock::new(),
    OnceLock::new(),
    OnceLock::new(),
];

fn basis_t(n: usize) -> &'static [f64] {
    let idx = TRANSFORM_SIZES
        .iter()
        .position(|&s| s == n)
        .unwrap_or_else(|| panic!("unsupported transform size {n}; HEVC sizes are 4/8/16/32"));
    BASIS_T_CELLS[idx].get_or_init(|| {
        let c = basis(n);
        let mut t = vec![0.0f64; n * n];
        for k in 0..n {
            for i in 0..n {
                t[i * n + k] = c[k * n + i];
            }
        }
        t.into_boxed_slice()
    })
}

/// Validates a transform size.
///
/// # Panics
///
/// Panics when `n` is not one of [`TRANSFORM_SIZES`].
fn check_size(n: usize) {
    assert!(
        TRANSFORM_SIZES.contains(&n),
        "unsupported transform size {n}; HEVC sizes are 4/8/16/32"
    );
}

/// Forward 2-D DCT-II of an `n x n` residual block (row-major `i32`
/// samples), producing `f64` coefficients.
///
/// # Panics
///
/// Panics when `n` is unsupported or `input.len() != n * n`.
pub fn forward(n: usize, input: &[i32]) -> Vec<f64> {
    let mut out = Vec::new();
    let mut tmp = Vec::new();
    forward_into(n, input, &mut out, &mut tmp);
    out
}

/// Allocation-free [`forward`]: writes the coefficients into `out`
/// using `tmp` as the intermediate product buffer. Both buffers are
/// resized to `n * n`; reusing them across blocks makes the transform
/// zero-allocation in steady state. The arithmetic (and therefore the
/// bit-exact result) is identical to [`forward`].
///
/// # Panics
///
/// Panics when `n` is unsupported or `input.len() != n * n`.
pub fn forward_into(n: usize, input: &[i32], out: &mut Vec<f64>, tmp: &mut Vec<f64>) {
    check_size(n);
    assert_eq!(input.len(), n * n, "input must be {n}x{n}");
    let c = basis(n);
    let ct = basis_t(n);
    // Both products run with the accumulation loop *outside* the
    // output loop (ikj order): every output element still sums its
    // terms in exactly the original index order — bit-identical under
    // IEEE-754 — but the innermost loop is a stride-1 axpy the
    // autovectorizer handles, instead of a latency-bound dot product.
    //
    // tmp = C * X
    tmp.clear();
    tmp.resize(n * n, 0.0);
    for k in 0..n {
        let trow = &mut tmp[k * n..(k + 1) * n];
        for i in 0..n {
            let cki = c[k * n + i];
            let xrow = &input[i * n..(i + 1) * n];
            for (t, &x) in trow.iter_mut().zip(xrow) {
                *t += cki * x as f64;
            }
        }
    }
    // out = tmp * C^T  (out[k,l] = Σ_j tmp[k,j] · ct[j,l])
    out.clear();
    out.resize(n * n, 0.0);
    for k in 0..n {
        let orow = &mut out[k * n..(k + 1) * n];
        for j in 0..n {
            let tkj = tmp[k * n + j];
            let crow = &ct[j * n..(j + 1) * n];
            for (o, &cc) in orow.iter_mut().zip(crow) {
                *o += tkj * cc;
            }
        }
    }
}

/// Inverse 2-D DCT-II, mapping coefficients back to residual samples
/// (`f64`, caller rounds).
///
/// # Panics
///
/// Panics when `n` is unsupported or `coeffs.len() != n * n`.
pub fn inverse(n: usize, coeffs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    let mut tmp = Vec::new();
    inverse_into(n, coeffs, &mut out, &mut tmp);
    out
}

/// Allocation-free [`inverse`]: writes the residual samples into `out`
/// using `tmp` as the intermediate product buffer (both resized to
/// `n * n`). Bit-exact with [`inverse`].
///
/// # Panics
///
/// Panics when `n` is unsupported or `coeffs.len() != n * n`.
pub fn inverse_into(n: usize, coeffs: &[f64], out: &mut Vec<f64>, tmp: &mut Vec<f64>) {
    check_size(n);
    assert_eq!(coeffs.len(), n * n, "coeffs must be {n}x{n}");
    let c = basis(n);
    let ct = basis_t(n);
    // Same ikj interchange as [`forward_into`]: identical per-element
    // accumulation order, vectorizable stride-1 inner loops.
    //
    // tmp = C^T * Y  (tmp[i,l] = Σ_k ct[i,k] · coeffs[k,l])
    tmp.clear();
    tmp.resize(n * n, 0.0);
    for i in 0..n {
        let trow = &mut tmp[i * n..(i + 1) * n];
        for k in 0..n {
            let cik = ct[i * n + k];
            let yrow = &coeffs[k * n..(k + 1) * n];
            for (t, &y) in trow.iter_mut().zip(yrow) {
                *t += cik * y;
            }
        }
    }
    // out = tmp * C  (out[i,j] = Σ_l tmp[i,l] · c[l,j])
    out.clear();
    out.resize(n * n, 0.0);
    for i in 0..n {
        let orow = &mut out[i * n..(i + 1) * n];
        for l in 0..n {
            let til = tmp[i * n + l];
            let crow = &c[l * n..(l + 1) * n];
            for (o, &cc) in orow.iter_mut().zip(crow) {
                *o += til * cc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dc_block_concentrates_energy() {
        let input = vec![10i32; 64];
        let coeffs = forward(8, &input);
        // DC coefficient = 10 * 8 (orthonormal scaling: sum/n * n = 80).
        assert!((coeffs[0] - 80.0).abs() < 1e-9, "dc={}", coeffs[0]);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-9, "ac[{i}]={c}");
        }
    }

    #[test]
    fn round_trip_is_exact_to_rounding() {
        for n in TRANSFORM_SIZES {
            let input: Vec<i32> = (0..n * n).map(|i| ((i * 37) % 511) as i32 - 255).collect();
            let rec = inverse(n, &forward(n, &input));
            for (a, b) in input.iter().zip(&rec) {
                assert!((*a as f64 - b).abs() < 1e-6, "n={n}");
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let input: Vec<i32> = (0..64).map(|i| (i * i % 97) - 48).collect();
        let coeffs = forward(8, &input);
        let e_spatial: f64 = input.iter().map(|&x| (x as f64) * (x as f64)).sum();
        let e_freq: f64 = coeffs.iter().map(|c| c * c).sum();
        assert!((e_spatial - e_freq).abs() / e_spatial < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unsupported transform size")]
    fn rejects_odd_sizes() {
        forward(6, &[0; 36]);
    }

    #[test]
    fn smooth_content_compacts_into_low_frequencies() {
        // A horizontal ramp: all energy in the first row of coefficients.
        let mut input = vec![0i32; 64];
        for r in 0..8 {
            for c in 0..8 {
                input[r * 8 + c] = c as i32 * 10;
            }
        }
        let coeffs = forward(8, &input);
        let low: f64 = coeffs[..8].iter().map(|c| c.abs()).sum();
        let high: f64 = coeffs[8..].iter().map(|c| c.abs()).sum();
        assert!(low > 10.0 * high, "low={low} high={high}");
    }

    #[test]
    fn concurrent_first_use_yields_identical_tables() {
        // Many threads race the lazy basis initialization through the
        // public API; every thread must observe the same coefficients
        // (regression test for the old poisonable Mutex<HashMap> path,
        // which could also deadlock-by-serialization under the worker
        // pool).
        let results: Vec<Vec<Vec<f64>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    scope.spawn(|| {
                        TRANSFORM_SIZES
                            .map(|n| {
                                let input = vec![7i32; n * n];
                                forward(n, &input)
                            })
                            .to_vec()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &results[1..] {
            assert_eq!(&results[0], other, "threads saw different basis tables");
        }
        // And the tables are shared statics: repeated lookups return
        // the same allocation.
        assert!(std::ptr::eq(basis(8), basis(8)));
    }

    /// The seed implementation's loop order (dot product per output
    /// element), kept as the bit-exactness spec for the interchanged
    /// loops.
    fn forward_spec(n: usize, input: &[i32]) -> Vec<f64> {
        let c = basis(n);
        let mut tmp = vec![0.0f64; n * n];
        for k in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += c[k * n + i] * input[i * n + j] as f64;
                }
                tmp[k * n + j] = acc;
            }
        }
        let mut out = vec![0.0f64; n * n];
        for k in 0..n {
            for l in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += tmp[k * n + j] * c[l * n + j];
                }
                out[k * n + l] = acc;
            }
        }
        out
    }

    fn inverse_spec(n: usize, coeffs: &[f64]) -> Vec<f64> {
        let c = basis(n);
        let mut tmp = vec![0.0f64; n * n];
        for i in 0..n {
            for l in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += c[k * n + i] * coeffs[k * n + l];
                }
                tmp[i * n + l] = acc;
            }
        }
        let mut out = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..n {
                    acc += tmp[i * n + l] * c[l * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn interchanged_loops_are_bit_exact_with_seed_order() {
        // The ikj interchange must not change a single mantissa bit:
        // every output element accumulates the same terms in the same
        // order as the seed's dot-product loops.
        for n in TRANSFORM_SIZES {
            let input: Vec<i32> = (0..n * n)
                .map(|i| (((i * 73 + 11) % 511) as i32 - 255) * if i % 3 == 0 { -1 } else { 1 })
                .collect();
            let got = forward(n, &input);
            let spec = forward_spec(n, &input);
            assert!(
                got.iter()
                    .zip(&spec)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "forward diverged bitwise at n={n}"
            );
            let rec = inverse(n, &got);
            let rec_spec = inverse_spec(n, &spec);
            assert!(
                rec.iter()
                    .zip(&rec_spec)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "inverse diverged bitwise at n={n}"
            );
        }
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        let mut out = Vec::new();
        let mut tmp = Vec::new();
        for n in TRANSFORM_SIZES {
            let input: Vec<i32> = (0..n * n).map(|i| ((i * 91) % 509) as i32 - 254).collect();
            forward_into(n, &input, &mut out, &mut tmp);
            let allocating = forward(n, &input);
            assert_eq!(out, allocating, "forward_into diverged at n={n}");
            let mut rec = Vec::new();
            inverse_into(n, &allocating, &mut rec, &mut tmp);
            assert_eq!(
                rec,
                inverse(n, &allocating),
                "inverse_into diverged at n={n}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_into_forward_bit_exact(input in proptest::collection::vec(-255i32..=255, 64)) {
            let mut out = vec![1.0; 3]; // dirty buffers must not leak through
            let mut tmp = vec![2.0; 99];
            forward_into(8, &input, &mut out, &mut tmp);
            let reference = forward(8, &input);
            prop_assert_eq!(out, reference);
        }

        #[test]
        fn prop_round_trip_8(input in proptest::collection::vec(-255i32..=255, 64)) {
            let rec = inverse(8, &forward(8, &input));
            for (a, b) in input.iter().zip(&rec) {
                prop_assert!((*a as f64 - b).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_linearity(
            a in proptest::collection::vec(-128i32..=127, 16),
            b in proptest::collection::vec(-128i32..=127, 16),
        ) {
            let sum: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let fa = forward(4, &a);
            let fb = forward(4, &b);
            let fsum = forward(4, &sum);
            for i in 0..16 {
                prop_assert!((fa[i] + fb[i] - fsum[i]).abs() < 1e-6);
            }
        }
    }
}

//! Reusable per-thread encode buffers.
//!
//! Tile encoding works block by block; before this module existed,
//! every block heap-allocated its original samples, intra reference
//! edges, predictions, residuals, coefficient/level vectors and the
//! reconstruction — a dozen allocations per block, millions per
//! second under the worker pool. [`EncScratch`] owns all of those
//! buffers so a steady-state encode loop performs **zero per-block
//! heap allocations** (verified by the counting-allocator test in
//! `tests/zero_alloc.rs`).
//!
//! [`encode_tile`](crate::encode_tile) keeps one `EncScratch` per
//! thread automatically; [`encode_tile_with_scratch`](crate::encode_tile_with_scratch)
//! threads an explicit instance for callers that manage their own
//! worker state.

use crate::block::ResidualScratch;
use crate::intra::IntraRefs;
use medvt_motion::MotionVector;

/// All reusable buffers one encoding thread needs.
///
/// Buffers only ever grow (to the largest block seen), so after the
/// first block of the first tile the encode loop stops touching the
/// allocator entirely.
#[derive(Debug, Clone, Default)]
pub struct EncScratch {
    /// Residual/transform/quantization intermediates.
    pub(crate) residual: ResidualScratch,
    /// Original samples of the current block.
    pub(crate) orig_block: Vec<u8>,
    /// Winning intra prediction of the current block.
    pub(crate) intra_pred: Vec<u8>,
    /// Trial prediction buffer for intra mode decision.
    pub(crate) mode_tmp: Vec<u8>,
    /// Motion-compensated prediction of the current block.
    pub(crate) inter_pred: Vec<u8>,
    /// Reconstruction of the current block before stitching.
    pub(crate) recon_block: Vec<u8>,
    /// Luma intra reference edges.
    pub(crate) luma_refs: IntraRefs,
    /// Original samples of the current chroma block.
    pub(crate) chroma_orig: Vec<u8>,
    /// Prediction of the current chroma block.
    pub(crate) chroma_pred: Vec<u8>,
    /// Chroma intra reference edges.
    pub(crate) chroma_refs: IntraRefs,
    /// Motion vectors of the tile's inter blocks.
    pub(crate) inter_mvs: Vec<MotionVector>,
    /// Median-of-MVs sort buffers.
    pub(crate) mv_xs: Vec<i16>,
    pub(crate) mv_ys: Vec<i16>,
}

impl EncScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

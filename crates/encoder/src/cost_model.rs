//! Deterministic CPU-cycle cost model.
//!
//! The paper measures per-tile CPU time on a Xeon E5-2667 and feeds it
//! to the workload LUT and the thread allocator. This substrate
//! replaces wall-clock profiling with a deterministic model over the
//! encoder's operation counts, so experiments reproduce bit-exactly on
//! any host while preserving the structure the scheduler depends on:
//! motion estimation dominates, and cost scales with tile area, texture
//! (coded coefficients) and search effort.

use crate::stats::TileStats;
use serde::{Deserialize, Serialize};

/// Cycle costs per elementary encoder operation.
///
/// Defaults are calibrated so a VGA frame tile encoded with TZ search
/// lands in the 10⁷–10⁸ cycle range — i.e. the 0.01–0.04 s per tile at
/// 3.6 GHz that Fig. 3 of the paper reports for the baseline, with the
/// proposed configuration an order of magnitude cheaper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per SAD sample operation during motion search.
    pub cycles_per_sad_sample: f64,
    /// Cycles per sample through forward+inverse transform & quant.
    pub cycles_per_transform_sample: f64,
    /// Cycles per emitted bit (entropy coding).
    pub cycles_per_bit: f64,
    /// Fixed per-block overhead (mode decision, reconstruction).
    pub cycles_per_block: f64,
    /// Fixed per-tile overhead (headers, boundary handling).
    pub cycles_per_tile: f64,
}

impl CostModel {
    /// Estimated cycles to encode a tile with the given statistics.
    pub fn tile_cycles(&self, stats: &TileStats) -> u64 {
        let blocks = (stats.intra_blocks + stats.inter_blocks) as f64;
        let cycles = self.cycles_per_sad_sample * stats.sad_samples as f64
            + self.cycles_per_transform_sample * stats.transform_samples as f64
            + self.cycles_per_bit * stats.bits as f64
            + self.cycles_per_block * blocks
            + self.cycles_per_tile;
        cycles as u64
    }

    /// Seconds to encode the tile at `freq_hz`.
    pub fn tile_seconds(&self, stats: &TileStats, freq_hz: f64) -> f64 {
        assert!(freq_hz > 0.0, "frequency must be positive");
        self.tile_cycles(stats) as f64 / freq_hz
    }

    /// This model with every cycle constant multiplied by `factor` —
    /// the uniform rescaling behind resolution scaling (area ratios)
    /// and host calibration.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not finite and positive.
    pub fn scaled_by(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be finite and positive"
        );
        Self {
            cycles_per_sad_sample: self.cycles_per_sad_sample * factor,
            cycles_per_transform_sample: self.cycles_per_transform_sample * factor,
            cycles_per_bit: self.cycles_per_bit * factor,
            cycles_per_block: self.cycles_per_block * factor,
            cycles_per_tile: self.cycles_per_tile * factor,
        }
    }

    /// The default model calibrated to the *host* the live benches ran
    /// on: every cycle constant is multiplied by the measured-over-
    /// modeled window-time ratio `rho`, so the model's `tile_seconds`
    /// predicts this host's wall seconds instead of the reference
    /// machine's.
    ///
    /// Feed `rho` from `live_bench.json`: each live scenario reports
    /// `measured_over_modeled` (and the artifact's `ratio_min` /
    /// `ratio_max` give the band across scenarios) — the ratio of real
    /// encode wall time to the modeled window makespan on identical
    /// placements. See README § "Calibrating the cost model to a host"
    /// for the derivation.
    ///
    /// # Panics
    ///
    /// Panics when `rho` is not finite and positive.
    pub fn with_host_speed_factor(rho: f64) -> Self {
        Self::default().scaled_by(rho)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibration: the per-sample constants absorb the work this
        // substrate does not model explicitly — fractional-sample
        // refinement, multi-size PU/TU RDO, in-loop filters — so that a
        // VGA frame under the baseline configuration (hexagon search
        // everywhere, uniform QP) costs 2–4 slots of f_max time, the
        // regime of the paper's Fig. 3 (per-tile times 0.009–0.04 s).
        Self {
            cycles_per_sad_sample: 20.0,
            cycles_per_transform_sample: 60.0,
            cycles_per_bit: 30.0,
            cycles_per_block: 20_000.0,
            cycles_per_tile: 50_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medvt_frame::Rect;

    fn stats(sad: u64, transform: u64, bits: u64, blocks: u32) -> TileStats {
        TileStats {
            rect: Rect::new(0, 0, 64, 64),
            bits,
            luma_ssd: 0,
            luma_samples: 4096,
            sad_samples: sad,
            transform_samples: transform,
            intra_blocks: 0,
            inter_blocks: blocks,
        }
    }

    #[test]
    fn me_effort_dominates_cost() {
        let model = CostModel::default();
        let heavy_me = stats(10_000_000, 8_000, 5_000, 16);
        let light_me = stats(500_000, 8_000, 5_000, 16);
        let heavy = model.tile_cycles(&heavy_me);
        let light = model.tile_cycles(&light_me);
        assert!(heavy > 4 * light, "heavy={heavy} light={light}");
    }

    #[test]
    fn default_lands_in_paper_range_for_baseline_tiles() {
        let model = CostModel::default();
        // One fifth of a VGA frame with hexagon search: ≈240 blocks x
        // 30 evals x 256 samples ≈ 1.8e6 SAD samples, ~92k transformed
        // samples, ~8 kbit.
        let tile = stats(1_800_000, 92_000, 8_000, 240);
        let secs = model.tile_seconds(&tile, 3.6e9);
        assert!(
            (0.005..0.05).contains(&secs),
            "baseline-style tile took {secs} s (paper Fig. 3: 0.009-0.04)"
        );
    }

    #[test]
    fn seconds_scale_inversely_with_frequency() {
        let model = CostModel::default();
        let s = stats(1_000_000, 10_000, 1_000, 10);
        let fast = model.tile_seconds(&s, 3.6e9);
        let slow = model.tile_seconds(&s, 2.9e9);
        assert!((slow / fast - 3.6 / 2.9).abs() < 1e-9);
    }

    #[test]
    fn empty_tile_still_has_overhead() {
        let model = CostModel::default();
        let s = stats(0, 0, 0, 0);
        assert_eq!(model.tile_cycles(&s), model.cycles_per_tile as u64);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        CostModel::default().tile_seconds(&stats(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn host_speed_factor_scales_predicted_seconds_linearly() {
        let s = stats(1_800_000, 92_000, 8_000, 240);
        let reference = CostModel::default().tile_seconds(&s, 3.6e9);
        // A host measured 1.7x slower than the model predicts
        // (live_bench.json's measured_over_modeled) yields a model
        // predicting 1.7x the seconds on identical stats.
        let host = CostModel::with_host_speed_factor(1.7).tile_seconds(&s, 3.6e9);
        assert!((host / reference - 1.7).abs() < 1e-6);
        // Composition: scaling twice multiplies.
        let twice = CostModel::default().scaled_by(2.0).scaled_by(0.5);
        assert_eq!(twice, CostModel::default().scaled_by(1.0));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_speed_factor_rejected() {
        CostModel::with_host_speed_factor(0.0);
    }
}

//! GOP structures: the Random Access hierarchical-B coding order the
//! paper uses (GOP of 8, B slices, §III-D2).

use medvt_frame::FrameKind;
use serde::{Deserialize, Serialize};

/// One coded picture inside a GOP template.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GopEntry {
    /// Display offset from the GOP start anchor (1..=gop size).
    pub offset: usize,
    /// Frame kind.
    pub kind: FrameKind,
    /// Reference display offsets from the GOP start (0 = previous
    /// anchor). Always already-coded pictures.
    pub ref_offsets: Vec<usize>,
}

/// A GOP template in coding order.
///
/// # Examples
///
/// ```
/// use medvt_encoder::GopStructure;
///
/// let gop = GopStructure::random_access(8);
/// assert_eq!(gop.size(), 8);
/// // The anchor is coded first…
/// assert_eq!(gop.entries()[0].offset, 8);
/// // …and every entry's references are coded before it.
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GopStructure {
    size: usize,
    entries: Vec<GopEntry>,
}

impl GopStructure {
    /// Builds the Random Access structure: a trailing anchor predicted
    /// from the previous anchor, plus hierarchical bi-predicted frames
    /// for power-of-two GOP sizes. Non-power-of-two sizes fall back to
    /// a low-delay P chain.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero.
    pub fn random_access(size: usize) -> Self {
        assert!(size > 0, "gop size must be non-zero");
        let mut entries = Vec::new();
        if size.is_power_of_two() && size >= 2 {
            entries.push(GopEntry {
                offset: size,
                kind: FrameKind::Predicted,
                ref_offsets: vec![0],
            });
            bisect(0, size, &mut entries);
        } else {
            for offset in 1..=size {
                entries.push(GopEntry {
                    offset,
                    kind: FrameKind::Predicted,
                    ref_offsets: vec![offset - 1],
                });
            }
        }
        Self { size, entries }
    }

    /// GOP length in frames.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Entries in coding order.
    pub fn entries(&self) -> &[GopEntry] {
        &self.entries
    }

    /// Largest reference distance in the structure (the ME difficulty
    /// driver: farther references mean larger apparent motion).
    pub fn max_ref_distance(&self) -> usize {
        self.entries
            .iter()
            .flat_map(|e| e.ref_offsets.iter().map(move |&r| e.offset.abs_diff(r)))
            .max()
            .unwrap_or(0)
    }
}

/// Recursive hierarchical bisection: emit the midpoint of `(lo, hi)`
/// as a B frame referencing both ends, then recurse.
fn bisect(lo: usize, hi: usize, entries: &mut Vec<GopEntry>) {
    if hi - lo < 2 {
        return;
    }
    let mid = (lo + hi) / 2;
    entries.push(GopEntry {
        offset: mid,
        kind: FrameKind::BiPredicted,
        ref_offsets: vec![lo, hi],
    });
    bisect(lo, mid, entries);
    bisect(mid, hi, entries);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn gop8_matches_hm_coding_order() {
        let gop = GopStructure::random_access(8);
        let order: Vec<usize> = gop.entries().iter().map(|e| e.offset).collect();
        assert_eq!(order, vec![8, 4, 2, 1, 3, 6, 5, 7]);
        assert_eq!(gop.entries()[0].kind, FrameKind::Predicted);
        assert!(gop.entries()[1..]
            .iter()
            .all(|e| e.kind == FrameKind::BiPredicted));
    }

    #[test]
    fn every_offset_coded_exactly_once() {
        for size in [1usize, 2, 4, 8, 16, 5, 7] {
            let gop = GopStructure::random_access(size);
            let offsets: HashSet<usize> = gop.entries().iter().map(|e| e.offset).collect();
            assert_eq!(offsets.len(), size, "size={size}");
            assert_eq!(gop.entries().len(), size);
            assert!(offsets.contains(&size));
            assert!(!offsets.contains(&0), "anchor 0 belongs to previous GOP");
        }
    }

    #[test]
    fn references_always_precede_use() {
        for size in [2usize, 4, 8, 16, 6] {
            let gop = GopStructure::random_access(size);
            let mut coded: HashSet<usize> = HashSet::new();
            coded.insert(0); // previous anchor always available
            for e in gop.entries() {
                for r in &e.ref_offsets {
                    assert!(
                        coded.contains(r),
                        "size={size}: offset {} references uncoded {}",
                        e.offset,
                        r
                    );
                }
                coded.insert(e.offset);
            }
        }
    }

    #[test]
    fn b_frames_reference_past_and_future() {
        let gop = GopStructure::random_access(8);
        for e in gop.entries() {
            if e.kind == FrameKind::BiPredicted {
                assert_eq!(e.ref_offsets.len(), 2);
                assert!(e.ref_offsets[0] < e.offset);
                assert!(e.ref_offsets[1] > e.offset);
            }
        }
    }

    #[test]
    fn max_ref_distance_for_gop8_is_8() {
        assert_eq!(GopStructure::random_access(8).max_ref_distance(), 8);
        assert_eq!(GopStructure::random_access(1).max_ref_distance(), 1);
    }

    #[test]
    fn non_power_of_two_is_low_delay() {
        let gop = GopStructure::random_access(5);
        for (i, e) in gop.entries().iter().enumerate() {
            assert_eq!(e.offset, i + 1);
            assert_eq!(e.kind, FrameKind::Predicted);
            assert_eq!(e.ref_offsets, vec![i]);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_gop_rejected() {
        GopStructure::random_access(0);
    }
}

//! Scalar quantization of transform coefficients.
//!
//! Uses the HEVC step-size law `Qstep = 2^((QP-4)/6)` with a dead-zone
//! rounding offset (HEVC uses 1/3 for intra, 1/6 for inter; the
//! difference is second-order for the experiments, so the intra offset
//! is used throughout).

use crate::config::Qp;

/// Dead-zone rounding offset as a fraction of the step size.
const DEAD_ZONE: f64 = 1.0 / 3.0;

/// Quantizes coefficients to integer levels.
pub fn quantize(coeffs: &[f64], qp: Qp) -> Vec<i32> {
    let mut out = Vec::new();
    quantize_into(coeffs, qp, &mut out);
    out
}

/// Allocation-free [`quantize`]: writes the levels into `out`
/// (cleared first). Bit-exact with [`quantize`].
pub fn quantize_into(coeffs: &[f64], qp: Qp, out: &mut Vec<i32>) {
    let step = qp.step_size();
    out.clear();
    out.extend(coeffs.iter().map(|&c| {
        let sign = if c < 0.0 { -1.0 } else { 1.0 };
        (sign * (c.abs() / step + DEAD_ZONE).floor()) as i32
    }));
}

/// Reconstructs coefficients from levels.
pub fn dequantize(levels: &[i32], qp: Qp) -> Vec<f64> {
    let mut out = Vec::new();
    dequantize_into(levels, qp, &mut out);
    out
}

/// Allocation-free [`dequantize`]: writes the coefficients into `out`
/// (cleared first). Bit-exact with [`dequantize`].
pub fn dequantize_into(levels: &[i32], qp: Qp, out: &mut Vec<f64>) {
    let step = qp.step_size();
    out.clear();
    out.extend(levels.iter().map(|&l| l as f64 * step));
}

/// Quantizes integer-path transform coefficients
/// ([`crate::transform::int`]) to levels: the same dead-zone law as
/// [`quantize`], applied to integer inputs.
pub fn quantize_int(coeffs: &[i32], qp: Qp) -> Vec<i32> {
    let mut out = Vec::new();
    quantize_int_into(coeffs, qp, &mut out);
    out
}

/// Allocation-free [`quantize_int`]: writes the levels into `out`
/// (cleared first). Bit-exact with [`quantize_int`].
pub fn quantize_int_into(coeffs: &[i32], qp: Qp, out: &mut Vec<i32>) {
    let step = qp.step_size();
    out.clear();
    out.extend(coeffs.iter().map(|&c| {
        let sign = if c < 0 { -1.0 } else { 1.0 };
        (sign * ((c.abs() as f64) / step + DEAD_ZONE).floor()) as i32
    }));
}

/// Reconstructs integer coefficients from levels (rounded to the
/// nearest integer so the inverse integer transform stays all-integer
/// downstream).
pub fn dequantize_int(levels: &[i32], qp: Qp) -> Vec<i32> {
    let mut out = Vec::new();
    dequantize_int_into(levels, qp, &mut out);
    out
}

/// Allocation-free [`dequantize_int`]: writes the coefficients into
/// `out` (cleared first). Bit-exact with [`dequantize_int`].
pub fn dequantize_int_into(levels: &[i32], qp: Qp, out: &mut Vec<i32>) {
    let step = qp.step_size();
    out.clear();
    out.extend(levels.iter().map(|&l| (l as f64 * step).round() as i32));
}

/// Counts the non-zero levels (the "significance" driver of entropy
/// cost).
pub fn nonzero_count(levels: &[i32]) -> usize {
    levels.iter().filter(|&&l| l != 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn qp(v: u8) -> Qp {
        Qp::new(v).expect("valid QP")
    }

    #[test]
    fn zero_coeffs_quantize_to_zero() {
        let levels = quantize(&[0.0; 16], qp(32));
        assert!(levels.iter().all(|&l| l == 0));
    }

    #[test]
    fn higher_qp_zeroes_more_coefficients() {
        let coeffs: Vec<f64> = (0..64).map(|i| (i as f64) * 1.5 - 40.0).collect();
        let fine = quantize(&coeffs, qp(22));
        let coarse = quantize(&coeffs, qp(42));
        assert!(nonzero_count(&coarse) <= nonzero_count(&fine));
        assert!(nonzero_count(&coarse) < coeffs.len());
    }

    #[test]
    fn reconstruction_error_bounded_by_step() {
        let coeffs: Vec<f64> = (0..32).map(|i| (i as f64) * 7.3 - 100.0).collect();
        let q = qp(27);
        let rec = dequantize(&quantize(&coeffs, q), q);
        for (c, r) in coeffs.iter().zip(&rec) {
            assert!(
                (c - r).abs() <= q.step_size(),
                "error {} exceeds step {}",
                (c - r).abs(),
                q.step_size()
            );
        }
    }

    #[test]
    fn dead_zone_rounds_small_values_to_zero() {
        let q = qp(32); // step ≈ 25.4
        let step = q.step_size();
        // |c| < (1 - 1/3) * step quantizes to zero.
        let levels = quantize(&[step * 0.5, -step * 0.5], q);
        assert_eq!(levels, vec![0, 0]);
        let levels = quantize(&[step * 0.9, -step * 0.9], q);
        assert_eq!(levels, vec![1, -1]);
    }

    #[test]
    fn quantization_is_odd_symmetric() {
        let coeffs = [57.3, -57.3, 13.1, -13.1];
        let levels = quantize(&coeffs, qp(30));
        assert_eq!(levels[0], -levels[1]);
        assert_eq!(levels[2], -levels[3]);
    }

    proptest! {
        #[test]
        fn prop_into_matches_allocating(
            coeffs in proptest::collection::vec(-500.0f64..500.0, 1..64),
            qp_val in 0u8..=51,
        ) {
            let q = qp(qp_val);
            let mut levels = vec![99i32; 7]; // dirty buffer must be cleared
            quantize_into(&coeffs, q, &mut levels);
            prop_assert_eq!(&levels, &quantize(&coeffs, q));
            let mut rec = vec![4.2f64; 3];
            dequantize_into(&levels, q, &mut rec);
            prop_assert_eq!(&rec, &dequantize(&levels, q));
        }

        #[test]
        fn prop_error_bounded(
            coeffs in proptest::collection::vec(-1000.0f64..1000.0, 1..64),
            qp_val in 0u8..=51,
        ) {
            let q = qp(qp_val);
            let rec = dequantize(&quantize(&coeffs, q), q);
            for (c, r) in coeffs.iter().zip(&rec) {
                prop_assert!((c - r).abs() <= q.step_size() * (1.0 + 1e-12));
            }
        }

        #[test]
        fn prop_monotone_levels(c in 0.0f64..1000.0, qp_val in 0u8..=51) {
            // Larger coefficients never get smaller levels.
            let q = qp(qp_val);
            let l1 = quantize(&[c], q)[0];
            let l2 = quantize(&[c * 2.0], q)[0];
            prop_assert!(l2 >= l1);
        }
    }
}

//! Sequence encoding: drives the Random Access GOP loop over a clip,
//! delegating tiling and per-tile configuration decisions to an
//! [`EncodeController`].
//!
//! The controller abstraction is the seam between this substrate and
//! the paper's contribution: the content-aware pipeline (re-tiling, QP
//! adaptation, ME policy, workload feedback) is *a controller*; so are
//! the uniform-tiling reference configurations of Table I and the
//! capacity-balanced baseline \[19\].

use crate::config::{EncoderConfig, TileConfig};
use crate::executor::{ScopedExecutor, SerialExecutor, TileExecutor};
use crate::frame_enc::{encode_frame_with, EncodedFrame, FramePlan};
use crate::gop::GopStructure;
use crate::stats::{FrameStats, SequenceStats};
use medvt_frame::{Frame, FrameKind, VideoClip};
use medvt_motion::MotionVector;
use std::collections::HashMap;

/// Context handed to the controller when planning a frame.
#[derive(Debug)]
pub struct FramePlanContext<'a> {
    /// Display-order index of the frame.
    pub poc: usize,
    /// Frame kind (I/P/B).
    pub kind: FrameKind,
    /// POC of the anchor that opens this GOP (`poc` of display offset 0).
    pub gop_start: usize,
    /// Display offset within the GOP (1..=gop size; 0 only for the very
    /// first frame of the sequence).
    pub offset_in_gop: usize,
    /// `true` when this is the first *coded* frame of its GOP — where
    /// the paper performs re-tiling and direction discovery.
    pub gop_first_coded: bool,
    /// The original frame to encode.
    pub frame: &'a Frame,
    /// The most recent reconstructed anchor, if any (content analysis
    /// of motion compares against this).
    pub prev_anchor: Option<&'a Frame>,
}

/// Decides tiling and per-tile configuration for every frame, and
/// observes results for feedback.
pub trait EncodeController {
    /// Produces the tiling and per-tile configs for the frame.
    fn plan(&mut self, ctx: &FramePlanContext<'_>) -> FramePlan;

    /// Observes the outcome of an encoded frame (statistics and the
    /// per-tile dominant motion vectors). Default: ignore.
    fn frame_done(&mut self, _poc: usize, _stats: &FrameStats, _dominant_mvs: &[MotionVector]) {}
}

/// The simplest controller: a fixed uniform grid and one configuration
/// for every tile of every frame — the reference setup of Table I.
#[derive(Debug, Clone, Copy)]
pub struct UniformController {
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
    /// Configuration applied to every tile.
    pub config: TileConfig,
}

impl UniformController {
    /// Creates a uniform controller.
    pub fn new(cols: usize, rows: usize, config: TileConfig) -> Self {
        Self { cols, rows, config }
    }
}

impl EncodeController for UniformController {
    fn plan(&mut self, ctx: &FramePlanContext<'_>) -> FramePlan {
        FramePlan::uniform(ctx.frame.y().bounds(), self.cols, self.rows, self.config)
    }
}

/// Drives GOP-structured encoding of whole sequences.
#[derive(Debug, Clone)]
pub struct VideoEncoder {
    config: EncoderConfig,
    parallel: bool,
}

impl VideoEncoder {
    /// Creates an encoder with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`EncoderConfig::validate`]).
    pub fn new(config: EncoderConfig) -> Self {
        config.validate().expect("invalid encoder configuration");
        Self {
            config,
            parallel: false,
        }
    }

    /// Enables scoped-thread parallel tile encoding.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// The encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Encodes `clip` under `controller`, returning per-frame stats.
    ///
    /// Frames are processed in GOP coding order; statistics come back
    /// in display order. Tile execution uses the serial path, or
    /// unpinned scoped threads when [`VideoEncoder::parallel`] is set;
    /// [`VideoEncoder::encode_clip_with`] plugs in an arbitrary
    /// executor instead (e.g. the runtime's placement-aware pool).
    pub fn encode_clip(
        &self,
        clip: &VideoClip,
        controller: &mut dyn EncodeController,
    ) -> SequenceStats {
        if self.parallel {
            self.encode_clip_with(clip, controller, &ScopedExecutor)
        } else {
            self.encode_clip_with(clip, controller, &SerialExecutor)
        }
    }

    /// Encodes `clip` under `controller`, running every frame's tiles
    /// on `executor`.
    ///
    /// All executors produce bit-identical streams (tile encoding is
    /// deterministic); they differ only in where the work runs.
    pub fn encode_clip_with(
        &self,
        clip: &VideoClip,
        controller: &mut dyn EncodeController,
        executor: &dyn TileExecutor,
    ) -> SequenceStats {
        let n = clip.len();
        let mut per_frame: Vec<Option<FrameStats>> = vec![None; n];
        if n == 0 {
            return SequenceStats {
                frames: vec![],
                fps: clip.fps(),
            };
        }
        let gop = GopStructure::random_access(self.config.gop_size);
        let mut dpb: HashMap<usize, Frame> = HashMap::new();

        // Frame 0: IDR.
        let first = clip.get(0).expect("n > 0");
        let encoded = self.encode_one(
            controller,
            executor,
            first,
            &[],
            FrameKind::Intra,
            0,
            0,
            0,
            true,
            None,
        );
        per_frame[0] = Some(encoded.stats.clone());
        controller.frame_done(0, &encoded.stats, &encoded.dominant_mvs);
        dpb.insert(0, encoded.recon);

        let gop_size = self.config.gop_size;
        let mut gop_start = 0usize;
        let mut gop_index = 0usize;
        while gop_start + 1 < n {
            gop_index += 1;
            let anchor_poc = gop_start + gop_size;
            if anchor_poc < n {
                // Full GOP. The anchor is Intra on the intra period.
                for (i, entry) in gop.entries().iter().enumerate() {
                    let poc = gop_start + entry.offset;
                    let kind = if entry.offset == gop_size
                        && gop_index.is_multiple_of(self.config.intra_period_gops)
                    {
                        FrameKind::Intra
                    } else {
                        entry.kind
                    };
                    let frame = clip.get(poc).expect("poc inside clip");
                    let ref_pocs: Vec<usize> = if kind == FrameKind::Intra {
                        vec![]
                    } else {
                        entry.ref_offsets.iter().map(|&o| gop_start + o).collect()
                    };
                    let refs: Vec<&Frame> = ref_pocs
                        .iter()
                        .map(|p| dpb.get(p).expect("reference coded before use"))
                        .collect();
                    let prev_anchor = dpb.get(&gop_start);
                    let encoded = self.encode_one(
                        controller,
                        executor,
                        frame,
                        &refs,
                        kind,
                        poc,
                        gop_start,
                        entry.offset,
                        i == 0,
                        prev_anchor,
                    );
                    per_frame[poc] = Some(encoded.stats.clone());
                    controller.frame_done(poc, &encoded.stats, &encoded.dominant_mvs);
                    dpb.insert(poc, encoded.recon);
                }
                // Keep only the new anchor for the next GOP.
                dpb.retain(|&poc, _| poc == anchor_poc);
                gop_start = anchor_poc;
            } else {
                // Trailing partial GOP: low-delay P chain. (`poc` is
                // the display index, not just a vector position.)
                #[allow(clippy::needless_range_loop)]
                for poc in gop_start + 1..n {
                    let frame = clip.get(poc).expect("poc inside clip");
                    let ref_poc = poc - 1;
                    let reference = dpb.get(&ref_poc).expect("previous frame retained");
                    let refs = vec![reference];
                    let encoded = self.encode_one(
                        controller,
                        executor,
                        frame,
                        &refs,
                        FrameKind::Predicted,
                        poc,
                        gop_start,
                        poc - gop_start,
                        poc == gop_start + 1,
                        dpb.get(&gop_start),
                    );
                    per_frame[poc] = Some(encoded.stats.clone());
                    controller.frame_done(poc, &encoded.stats, &encoded.dominant_mvs);
                    dpb.insert(poc, encoded.recon);
                }
                break;
            }
        }

        SequenceStats {
            frames: per_frame
                .into_iter()
                .map(|f| f.expect("every frame encoded"))
                .collect(),
            fps: clip.fps(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn encode_one(
        &self,
        controller: &mut dyn EncodeController,
        executor: &dyn TileExecutor,
        frame: &Frame,
        refs: &[&Frame],
        kind: FrameKind,
        poc: usize,
        gop_start: usize,
        offset_in_gop: usize,
        gop_first_coded: bool,
        prev_anchor: Option<&Frame>,
    ) -> EncodedFrame {
        let ctx = FramePlanContext {
            poc,
            kind,
            gop_start,
            offset_in_gop,
            gop_first_coded,
            frame,
            prev_anchor,
        };
        let plan = controller.plan(&ctx);
        encode_frame_with(frame, refs, kind, poc, &plan, &self.config, executor, None)
    }
}

/// Convenience: encode a clip with a uniform grid and one tile config.
pub fn encode_uniform(
    clip: &VideoClip,
    cols: usize,
    rows: usize,
    tile_config: TileConfig,
    encoder_config: EncoderConfig,
) -> SequenceStats {
    let mut controller = UniformController::new(cols, rows, tile_config);
    VideoEncoder::new(encoder_config).encode_clip(clip, &mut controller)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Qp, SearchSpec};
    use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
    use medvt_frame::Resolution;

    fn clip(frames: usize) -> VideoClip {
        PhantomVideo::builder(BodyPart::Brain)
            .resolution(Resolution::new(96, 64))
            .motion(MotionPattern::Pan { dx: 0.5, dy: 0.0 })
            .seed(9)
            .build()
            .capture(frames)
    }

    fn tcfg(qp: u8) -> TileConfig {
        TileConfig {
            qp: Qp::new(qp).unwrap(),
            search: SearchSpec::Diamond,
            window: medvt_motion::SearchWindow::W16,
        }
    }

    #[test]
    fn encodes_full_gops_plus_tail() {
        let clip = clip(19); // 1 IDR + 2 GOPs of 8 + 2 trailing
        let stats = encode_uniform(&clip, 2, 1, tcfg(32), EncoderConfig::default());
        assert_eq!(stats.frames.len(), 19);
        // Every frame has stats for both tiles.
        assert!(stats.frames.iter().all(|f| f.tiles.len() == 2));
        // Display order preserved.
        for (i, f) in stats.frames.iter().enumerate() {
            assert_eq!(f.poc, i);
        }
        assert!(stats.mean_psnr() > 30.0);
        assert!(stats.bitrate_bps() > 0.0);
    }

    #[test]
    fn short_clip_without_full_gop() {
        let clip = clip(5);
        let stats = encode_uniform(&clip, 1, 1, tcfg(32), EncoderConfig::default());
        assert_eq!(stats.frames.len(), 5);
    }

    #[test]
    fn single_frame_clip() {
        let clip = clip(1);
        let stats = encode_uniform(&clip, 1, 1, tcfg(27), EncoderConfig::default());
        assert_eq!(stats.frames.len(), 1);
        assert!(stats.frames[0].tiles[0].intra_blocks > 0);
    }

    #[test]
    fn inter_frames_cost_fewer_bits_than_intra() {
        let clip = clip(9);
        let stats = encode_uniform(&clip, 1, 1, tcfg(32), EncoderConfig::default());
        let idr_bits = stats.frames[0].bits();
        let b_bits: u64 = stats.frames[1..8].iter().map(|f| f.bits()).sum::<u64>() / 7;
        assert!(
            b_bits < idr_bits,
            "B frames {b_bits} should undercut IDR {idr_bits}"
        );
    }

    #[test]
    fn intra_period_forces_idr_anchors() {
        let clip = clip(17); // anchors at 8 and 16
        let cfg = EncoderConfig {
            intra_period_gops: 1, // every anchor is Intra
            ..Default::default()
        };
        let stats = encode_uniform(&clip, 1, 1, tcfg(32), cfg);
        // Anchor frames coded intra ⇒ zero inter blocks.
        assert_eq!(stats.frames[8].total().inter_blocks, 0);
        assert_eq!(stats.frames[16].total().inter_blocks, 0);
        // Mid-GOP B frames do use inter.
        assert!(stats.frames[4].total().inter_blocks > 0);
    }

    #[test]
    fn controller_sees_gop_phases() {
        #[derive(Default)]
        struct Probe {
            first_coded: Vec<usize>,
            done: Vec<usize>,
        }
        impl EncodeController for Probe {
            fn plan(&mut self, ctx: &FramePlanContext<'_>) -> FramePlan {
                if ctx.gop_first_coded {
                    self.first_coded.push(ctx.poc);
                }
                FramePlan::uniform(ctx.frame.y().bounds(), 1, 1, tcfg(32))
            }
            fn frame_done(&mut self, poc: usize, _stats: &FrameStats, _mvs: &[MotionVector]) {
                self.done.push(poc);
            }
        }
        let clip = clip(17);
        let mut probe = Probe::default();
        VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut probe);
        // GOP-first coded frames: IDR 0, anchors 8 and 16.
        assert_eq!(probe.first_coded, vec![0, 8, 16]);
        assert_eq!(probe.done.len(), 17);
    }

    #[test]
    fn empty_clip_is_empty_stats() {
        let empty = VideoClip::new(Resolution::new(96, 64), 24.0);
        let stats = encode_uniform(&empty, 1, 1, tcfg(32), EncoderConfig::default());
        assert!(stats.frames.is_empty());
    }

    #[test]
    fn parallel_matches_serial_over_sequence() {
        let clip = clip(9);
        let mut c1 = UniformController::new(2, 2, tcfg(32));
        let serial = VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut c1);
        let mut c2 = UniformController::new(2, 2, tcfg(32));
        let parallel = VideoEncoder::new(EncoderConfig::default())
            .parallel(true)
            .encode_clip(&clip, &mut c2);
        assert_eq!(serial, parallel);
    }
}

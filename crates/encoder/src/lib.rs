//! # medvt-encoder
//!
//! An HEVC-like tile-based encoder substrate for the `medvt`
//! reproduction of *"Online Efficient Bio-Medical Video Transcoding on
//! MPSoCs Through Content-Aware Workload Allocation"* (Iranfar et al.,
//! DATE 2018).
//!
//! The paper implements its framework on top of the Kvazaar HEVC
//! encoder. This crate rebuilds the pieces the framework actually
//! exercises, from scratch:
//!
//! * DCT transform ([`transform`]), HEVC-law quantization ([`quant`])
//!   and a real bit-emitting entropy layer ([`bits`]) — so PSNR and
//!   bitrate in the experiments are *measured*, not modelled;
//! * intra prediction ([`IntraMode`]), motion-compensated inter
//!   prediction with pluggable search algorithms ([`SearchSpec`]);
//! * independent tile encoding ([`encode_tile`]) and frame-level
//!   parallelism ([`encode_frame`]);
//! * the Random Access GOP-8 structure ([`GopStructure`]) and a
//!   sequence driver ([`VideoEncoder`]) that delegates tiling and
//!   per-tile configuration to an [`EncodeController`] — the seam where
//!   the paper's content-aware pipeline plugs in;
//! * a deterministic CPU-cycle model ([`CostModel`]) standing in for
//!   the paper's wall-clock profiling.
//!
//! # Examples
//!
//! Encode a phantom clip with a uniform 2x2 tiling:
//!
//! ```
//! use medvt_encoder::{encode_uniform, EncoderConfig, Qp, TileConfig};
//! use medvt_frame::synth::{BodyPart, PhantomVideo};
//! use medvt_frame::Resolution;
//!
//! let clip = PhantomVideo::builder(BodyPart::Brain)
//!     .resolution(Resolution::new(96, 64))
//!     .seed(1)
//!     .build()
//!     .capture(9);
//! let stats = encode_uniform(
//!     &clip,
//!     2,
//!     2,
//!     TileConfig::with_qp(Qp::new(32).expect("valid QP")),
//!     EncoderConfig::default(),
//! );
//! assert_eq!(stats.frames.len(), 9);
//! assert!(stats.mean_psnr() > 30.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bits;
mod block;
mod config;
mod cost_model;
mod executor;
mod frame_enc;
mod gop;
mod intra;
pub mod quant;
mod scratch;
mod segment;
mod stats;
mod tile;
pub mod transform;
mod video_enc;

pub use block::{
    code_residual, code_residual_into, CodedResidual, ResidualOutcome, ResidualScratch,
};
pub use config::{EncoderConfig, Qp, SearchSpec, TileConfig};
pub use cost_model::CostModel;
pub use executor::{ScopedExecutor, SerialExecutor, TileExecutor, TileJob};
pub use frame_enc::{
    encode_frame, encode_frame_with, split_aligned, EncodedFrame, FramePlan, PlanError,
};
pub use gop::{GopEntry, GopStructure};
pub use intra::{IntraMode, IntraRefs};
pub use scratch::EncScratch;
pub use segment::{plan_segments, SegmentSpec};
pub use stats::{FrameStats, SequenceStats, TileStats};
pub use tile::{encode_tile, encode_tile_with_scratch, TileOutcome};
pub use transform::TxPath;
pub use video_enc::{
    encode_uniform, EncodeController, FramePlanContext, UniformController, VideoEncoder,
};

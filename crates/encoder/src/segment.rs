//! Segment planning: the unit of cluster distribution.
//!
//! A *segment* is a contiguous run of whole GOPs — the smallest span a
//! worker can transcode independently under the open-loop tile path
//! (every frame depends only on the *original* previous frame, so any
//! GOP-aligned span is self-contained). The coordinator splits a job's
//! slot horizon into segments with [`plan_segments`], leases them to
//! worker nodes, and stitches the returned bitstreams back together in
//! [`SegmentSpec::index`] order.

use serde::{Deserialize, Serialize};

/// One contiguous GOP range of a job, with its frame-slot span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSpec {
    /// Position of this segment within the job (reassembly order).
    pub index: usize,
    /// First GOP covered (inclusive).
    pub start_gop: usize,
    /// Number of GOPs covered.
    pub gops: usize,
    /// First frame slot covered (inclusive): `start_gop * gop_slots`.
    pub start_slot: usize,
    /// Frame slots covered; the final segment of a job may be shorter
    /// than `gops * gop_slots` when the horizon is not GOP-aligned.
    pub slots: usize,
}

impl SegmentSpec {
    /// One past the last slot covered.
    pub fn end_slot(&self) -> usize {
        self.start_slot + self.slots
    }

    /// The half-open slot range `start_slot..end_slot`.
    pub fn slot_range(&self) -> std::ops::Range<usize> {
        self.start_slot..self.end_slot()
    }
}

/// Partitions `0..total_slots` into contiguous GOP-aligned segments of
/// `gops_per_segment` GOPs each (the last segment takes whatever
/// remains). Every slot lands in exactly one segment and concatenating
/// the segments in `index` order reproduces the original slot span —
/// the invariant bitstream reassembly relies on.
///
/// # Panics
///
/// Panics when `gop_slots` or `gops_per_segment` is zero.
pub fn plan_segments(
    total_slots: usize,
    gop_slots: usize,
    gops_per_segment: usize,
) -> Vec<SegmentSpec> {
    assert!(gop_slots > 0, "gop_slots must be non-zero");
    assert!(gops_per_segment > 0, "gops_per_segment must be non-zero");
    let seg_slots = gop_slots * gops_per_segment;
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < total_slots {
        let slots = seg_slots.min(total_slots - start);
        out.push(SegmentSpec {
            index: out.len(),
            start_gop: start / gop_slots,
            gops: slots.div_ceil(gop_slots),
            start_slot: start,
            slots,
        });
        start += slots;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_tile_the_horizon_exactly() {
        for (total, gop, per) in [(96, 8, 2), (96, 8, 3), (100, 8, 2), (7, 8, 1), (0, 8, 2)] {
            let segs = plan_segments(total, gop, per);
            let mut cursor = 0usize;
            for (i, s) in segs.iter().enumerate() {
                assert_eq!(s.index, i);
                assert_eq!(s.start_slot, cursor, "total={total} gop={gop} per={per}");
                assert_eq!(s.start_gop, cursor / gop);
                assert!(s.slots > 0);
                cursor = s.end_slot();
            }
            assert_eq!(cursor, total, "segments must cover every slot once");
        }
    }

    #[test]
    fn aligned_horizon_yields_equal_segments() {
        let segs = plan_segments(96, 8, 2);
        assert_eq!(segs.len(), 6);
        assert!(segs.iter().all(|s| s.slots == 16 && s.gops == 2));
        assert_eq!(segs[3].slot_range(), 48..64);
    }

    #[test]
    fn ragged_tail_is_a_short_segment() {
        let segs = plan_segments(100, 8, 2);
        let last = segs.last().unwrap();
        assert_eq!(last.slots, 4);
        assert_eq!(last.gops, 1);
        assert_eq!(last.end_slot(), 100);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_gop_slots_rejected() {
        plan_segments(10, 0, 1);
    }
}

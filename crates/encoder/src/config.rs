//! Encoder configuration: quantization parameters, motion-search
//! specification and the per-tile encoding configuration the
//! content-aware pipeline tunes.

use crate::transform::TxPath;
use medvt_motion::{
    BioMedicalSearch, CrossSearch, DiamondSearch, FullSearch, GopPhase, HexOrientation,
    HexagonSearch, MotionLevel, MotionSearch, MotionVector, OneAtATimeSearch, SearchWindow,
    ThreeStepSearch, TzSearch,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// HEVC quantization parameter, valid range `0..=51`.
///
/// The paper's per-tile QP ladder is {42, 37, 32, 27, 22} (§III-C1).
///
/// # Examples
///
/// ```
/// use medvt_encoder::Qp;
///
/// let qp = Qp::new(32).unwrap();
/// assert_eq!(qp.value(), 32);
/// assert!(Qp::new(52).is_none());
/// assert!(qp.step_size() > Qp::new(27).unwrap().step_size());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Qp(u8);

impl Qp {
    /// Lowest representable QP.
    pub const MIN: Qp = Qp(0);
    /// Highest representable QP.
    pub const MAX: Qp = Qp(51);

    /// The paper's per-texture QP defaults, lowest-texture first:
    /// very-low 42, low 37, medium 32, high 27, extreme 22.
    pub const PAPER_LADDER: [Qp; 5] = [Qp(42), Qp(37), Qp(32), Qp(27), Qp(22)];

    /// Creates a QP, returning `None` outside `0..=51`.
    pub const fn new(value: u8) -> Option<Qp> {
        if value <= 51 {
            Some(Qp(value))
        } else {
            None
        }
    }

    /// Creates a QP, clamping into `0..=51`.
    pub const fn saturating(value: i32) -> Qp {
        if value < 0 {
            Qp(0)
        } else if value > 51 {
            Qp(51)
        } else {
            Qp(value as u8)
        }
    }

    /// The numeric QP value.
    pub const fn value(&self) -> u8 {
        self.0
    }

    /// HEVC quantization step size `2^((QP-4)/6)`.
    pub fn step_size(&self) -> f64 {
        2f64.powf((self.0 as f64 - 4.0) / 6.0)
    }

    /// The HM-style Lagrange multiplier `0.85 * 2^((QP-12)/3)` used in
    /// mode decisions.
    pub fn lambda(&self) -> f64 {
        0.85 * 2f64.powf((self.0 as f64 - 12.0) / 3.0)
    }

    /// This QP shifted by `delta`, clamped to the valid range.
    pub fn offset(&self, delta: i32) -> Qp {
        Qp::saturating(self.0 as i32 + delta)
    }
}

impl Default for Qp {
    fn default() -> Self {
        Qp(32)
    }
}

impl fmt::Display for Qp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QP{}", self.0)
    }
}

/// Serializable specification of a motion-search algorithm, turned into
/// a live searcher with [`SearchSpec::instantiate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SearchSpec {
    /// Exhaustive full search.
    Full,
    /// Three-step search.
    ThreeStep,
    /// Diamond search.
    Diamond,
    /// Cross-search.
    Cross,
    /// One-at-a-time search (classic horizontal-first).
    OneAtATime,
    /// Hexagon-based search with fixed orientation policy.
    Hexagon(HexOrientation),
    /// HM Test Zone search — the reference of Table I.
    Tz,
    /// The paper's proposed bio-medical policy.
    BioMedical {
        /// Tile motion level from the analyzer.
        level: MotionLevel,
        /// GOP phase (first frame discovers direction, later frames
        /// inherit it).
        phase: GopPhase,
    },
}

impl SearchSpec {
    /// The proposed policy for the first frame of a GOP.
    pub const fn biomed_first(level: MotionLevel) -> SearchSpec {
        SearchSpec::BioMedical {
            level,
            phase: GopPhase::First,
        }
    }

    /// The proposed policy for later GOP frames.
    pub const fn biomed_subsequent(level: MotionLevel, direction: MotionVector) -> SearchSpec {
        SearchSpec::BioMedical {
            level,
            phase: GopPhase::Subsequent { direction },
        }
    }

    /// Builds the boxed searcher.
    pub fn instantiate(&self) -> Box<dyn MotionSearch + Send + Sync> {
        match *self {
            SearchSpec::Full => Box::new(FullSearch),
            SearchSpec::ThreeStep => Box::new(ThreeStepSearch),
            SearchSpec::Diamond => Box::new(DiamondSearch),
            SearchSpec::Cross => Box::new(CrossSearch),
            SearchSpec::OneAtATime => Box::new(OneAtATimeSearch::new()),
            SearchSpec::Hexagon(orientation) => Box::new(HexagonSearch::new(orientation)),
            SearchSpec::Tz => Box::new(TzSearch::new()),
            SearchSpec::BioMedical { level, phase } => {
                Box::new(BioMedicalSearch::new(level, phase))
            }
        }
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SearchSpec::Full => "full",
            SearchSpec::ThreeStep => "three-step",
            SearchSpec::Diamond => "diamond",
            SearchSpec::Cross => "cross",
            SearchSpec::OneAtATime => "one-at-a-time",
            SearchSpec::Hexagon(HexOrientation::Horizontal) => "hexagon-h",
            SearchSpec::Hexagon(HexOrientation::Vertical) => "hexagon-v",
            SearchSpec::Hexagon(HexOrientation::Rotating) => "hexagon-rot",
            SearchSpec::Tz => "tz",
            SearchSpec::BioMedical { .. } => "biomed",
        }
    }
}

impl Default for SearchSpec {
    fn default() -> Self {
        SearchSpec::Hexagon(HexOrientation::Horizontal)
    }
}

/// Per-tile encoding configuration — the knobs the paper tunes per tile
/// (§III-C): QP, search algorithm and search window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileConfig {
    /// Quantization parameter for the tile.
    pub qp: Qp,
    /// Motion search algorithm.
    pub search: SearchSpec,
    /// Maximum search window for the tile.
    pub window: SearchWindow,
}

impl TileConfig {
    /// A tile configuration with the given QP and defaults elsewhere.
    pub fn with_qp(qp: Qp) -> Self {
        Self {
            qp,
            ..Self::default()
        }
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        Self {
            qp: Qp::default(),
            search: SearchSpec::default(),
            window: SearchWindow::W64,
        }
    }
}

/// Whole-encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Luma coding-block size (chroma uses half), default 16.
    pub block_size: usize,
    /// GOP length for the Random Access structure, default 8 (paper
    /// §III-D2).
    pub gop_size: usize,
    /// Intra period in GOPs: an I-frame opens every `intra_period_gops`
    /// GOPs, default 4.
    pub intra_period_gops: usize,
    /// Chroma QP offset relative to luma.
    pub chroma_qp_offset: i32,
    /// Encode chroma planes (disable for luma-only experiments).
    pub chroma: bool,
    /// Transform arithmetic, default [`TxPath::F64`] (the frozen
    /// bitstream goldens depend on it; [`TxPath::Int`] has its own).
    pub transform: TxPath,
}

impl EncoderConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when the block size is not a positive multiple
    /// of 8 or the GOP size is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_size == 0 || !self.block_size.is_multiple_of(8) {
            return Err(format!(
                "block size {} must be a positive multiple of 8",
                self.block_size
            ));
        }
        if self.gop_size == 0 {
            return Err("gop size must be non-zero".into());
        }
        if self.intra_period_gops == 0 {
            return Err("intra period must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            block_size: 16,
            gop_size: 8,
            intra_period_gops: 4,
            chroma_qp_offset: 0,
            chroma: true,
            transform: TxPath::F64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qp_range_enforced() {
        assert!(Qp::new(0).is_some());
        assert!(Qp::new(51).is_some());
        assert!(Qp::new(52).is_none());
        assert_eq!(Qp::saturating(-5), Qp::MIN);
        assert_eq!(Qp::saturating(99), Qp::MAX);
    }

    #[test]
    fn qp_step_doubles_every_six() {
        let a = Qp::new(22).unwrap().step_size();
        let b = Qp::new(28).unwrap().step_size();
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn qp4_step_is_one() {
        assert!((Qp::new(4).unwrap().step_size() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_grows_with_qp() {
        assert!(Qp::new(37).unwrap().lambda() > Qp::new(22).unwrap().lambda());
    }

    #[test]
    fn offset_clamps() {
        let qp = Qp::new(50).unwrap();
        assert_eq!(qp.offset(5), Qp::MAX);
        assert_eq!(qp.offset(-60), Qp::MIN);
        assert_eq!(qp.offset(-5).value(), 45);
    }

    #[test]
    fn paper_ladder_is_descending_quality() {
        let ladder = Qp::PAPER_LADDER;
        assert_eq!(ladder[0].value(), 42);
        assert_eq!(ladder[4].value(), 22);
        for w in ladder.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn search_spec_instantiates_all() {
        let specs = [
            SearchSpec::Full,
            SearchSpec::ThreeStep,
            SearchSpec::Diamond,
            SearchSpec::Cross,
            SearchSpec::OneAtATime,
            SearchSpec::Hexagon(HexOrientation::Rotating),
            SearchSpec::Tz,
            SearchSpec::biomed_first(MotionLevel::High),
            SearchSpec::biomed_subsequent(MotionLevel::Low, MotionVector::new(1, 0)),
        ];
        for s in specs {
            let algo = s.instantiate();
            assert!(!algo.name().is_empty());
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn encoder_config_validation() {
        assert!(EncoderConfig::default().validate().is_ok());
        let bad = EncoderConfig {
            block_size: 12,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = EncoderConfig {
            gop_size: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn tile_config_defaults() {
        let tc = TileConfig::default();
        assert_eq!(tc.qp.value(), 32);
        assert_eq!(tc.window, SearchWindow::W64);
        assert_eq!(TileConfig::with_qp(Qp::new(27).unwrap()).qp.value(), 27);
    }

    #[test]
    fn qp_display() {
        assert_eq!(Qp::new(37).unwrap().to_string(), "QP37");
    }
}

//! Residual coding of one prediction block: transform, quantization,
//! entropy coding and reconstruction.

use crate::bits::{code_block, BitWriter};
use crate::config::Qp;
use crate::quant::{dequantize_int_into, dequantize_into, quantize_int_into, quantize_into};
use crate::transform::{self, TxPath};

/// Outcome of coding one residual region.
#[derive(Debug, Clone)]
pub struct CodedResidual {
    /// Reconstructed samples (prediction + dequantized residual),
    /// row-major, same geometry as the input.
    pub recon: Vec<u8>,
    /// Bits emitted for the residual coefficients.
    pub bits: u64,
    /// Samples pushed through the transform (fwd+inv counted once).
    pub transform_samples: u64,
    /// Sum of squared error of `recon` against the original.
    pub ssd: u64,
}

/// Rate/distortion counters of one coded residual region (the
/// reconstruction itself lands in a caller-owned buffer).
#[derive(Debug, Clone, Copy)]
pub struct ResidualOutcome {
    /// Bits emitted for the residual coefficients.
    pub bits: u64,
    /// Samples pushed through the transform (fwd+inv counted once).
    pub transform_samples: u64,
    /// Sum of squared error of the reconstruction against the original.
    pub ssd: u64,
}

/// Reusable buffers for [`code_residual_into`]: one residual
/// sub-block, the coefficient/level/reconstruction intermediates and
/// the DCT product scratch. One instance per encoding thread makes
/// residual coding zero-allocation in steady state.
#[derive(Debug, Clone, Default)]
pub struct ResidualScratch {
    residual: Vec<i32>,
    coeffs: Vec<f64>,
    levels: Vec<i32>,
    rec_coeffs: Vec<f64>,
    rec_res: Vec<f64>,
    dct_tmp: Vec<f64>,
    // Integer-path ([`TxPath::Int`]) counterparts.
    coeffs_i: Vec<i32>,
    rec_coeffs_i: Vec<i32>,
    rec_res_i: Vec<i32>,
    dct_tmp_i: Vec<i32>,
    dct_wide_i: Vec<i64>,
}

/// Codes the residual `original - prediction` of a `w x h` region using
/// `tx_size` transforms, writing coefficients into `writer`.
///
/// `w` and `h` must be multiples of `tx_size` (the tiling layer aligns
/// tiles to an 8-sample grid to guarantee this).
///
/// # Panics
///
/// Panics when the buffers do not match `w * h` or the dimensions are
/// not multiples of `tx_size`.
pub fn code_residual(
    original: &[u8],
    prediction: &[u8],
    w: usize,
    h: usize,
    tx_size: usize,
    qp: Qp,
    writer: &mut BitWriter,
) -> CodedResidual {
    let mut scratch = ResidualScratch::default();
    let mut recon = Vec::new();
    let out = code_residual_into(
        original,
        prediction,
        w,
        h,
        tx_size,
        qp,
        TxPath::F64,
        writer,
        &mut scratch,
        &mut recon,
    );
    CodedResidual {
        recon,
        bits: out.bits,
        transform_samples: out.transform_samples,
        ssd: out.ssd,
    }
}

/// Allocation-free [`code_residual`]: all intermediates live in
/// `scratch` and the reconstruction is written into `recon` (cleared
/// first). With [`TxPath::F64`], emitted bits, reconstruction and
/// counters are bit-exact with [`code_residual`]; [`TxPath::Int`]
/// runs the fixed-point transform of [`transform::int`] instead
/// (different bitstream, its own goldens).
///
/// # Panics
///
/// Panics when the buffers do not match `w * h` or the dimensions are
/// not multiples of `tx_size`.
#[allow(clippy::too_many_arguments)]
pub fn code_residual_into(
    original: &[u8],
    prediction: &[u8],
    w: usize,
    h: usize,
    tx_size: usize,
    qp: Qp,
    tx_path: TxPath,
    writer: &mut BitWriter,
    scratch: &mut ResidualScratch,
    recon: &mut Vec<u8>,
) -> ResidualOutcome {
    assert_eq!(original.len(), w * h, "original buffer mismatch");
    assert_eq!(prediction.len(), w * h, "prediction buffer mismatch");
    assert!(
        w.is_multiple_of(tx_size) && h.is_multiple_of(tx_size),
        "{w}x{h} region not divisible into {tx_size}x{tx_size} transforms"
    );
    recon.clear();
    recon.extend_from_slice(prediction);
    let mut bits = 0u64;
    let mut transform_samples = 0u64;
    scratch.residual.clear();
    scratch.residual.resize(tx_size * tx_size, 0);
    let mut ty = 0;
    while ty < h {
        let mut tx = 0;
        while tx < w {
            // Gather the residual sub-block.
            for r in 0..tx_size {
                for c in 0..tx_size {
                    let idx = (ty + r) * w + (tx + c);
                    scratch.residual[r * tx_size + c] =
                        original[idx] as i32 - prediction[idx] as i32;
                }
            }
            match tx_path {
                TxPath::F64 => {
                    transform::forward_into(
                        tx_size,
                        &scratch.residual,
                        &mut scratch.coeffs,
                        &mut scratch.dct_tmp,
                    );
                    quantize_into(&scratch.coeffs, qp, &mut scratch.levels);
                    bits += code_block(&scratch.levels, tx_size, writer);
                    dequantize_into(&scratch.levels, qp, &mut scratch.rec_coeffs);
                    transform::inverse_into(
                        tx_size,
                        &scratch.rec_coeffs,
                        &mut scratch.rec_res,
                        &mut scratch.dct_tmp,
                    );
                    for r in 0..tx_size {
                        for c in 0..tx_size {
                            let idx = (ty + r) * w + (tx + c);
                            let v = prediction[idx] as f64 + scratch.rec_res[r * tx_size + c];
                            recon[idx] = v.round().clamp(0.0, 255.0) as u8;
                        }
                    }
                }
                TxPath::Int => {
                    transform::int::forward_into(
                        tx_size,
                        &scratch.residual,
                        &mut scratch.coeffs_i,
                        &mut scratch.dct_tmp_i,
                    );
                    quantize_int_into(&scratch.coeffs_i, qp, &mut scratch.levels);
                    bits += code_block(&scratch.levels, tx_size, writer);
                    dequantize_int_into(&scratch.levels, qp, &mut scratch.rec_coeffs_i);
                    transform::int::inverse_into(
                        tx_size,
                        &scratch.rec_coeffs_i,
                        &mut scratch.rec_res_i,
                        &mut scratch.dct_tmp_i,
                        &mut scratch.dct_wide_i,
                    );
                    for r in 0..tx_size {
                        for c in 0..tx_size {
                            let idx = (ty + r) * w + (tx + c);
                            let v = prediction[idx] as i32 + scratch.rec_res_i[r * tx_size + c];
                            recon[idx] = v.clamp(0, 255) as u8;
                        }
                    }
                }
            }
            transform_samples += (tx_size * tx_size) as u64;
            tx += tx_size;
        }
        ty += tx_size;
    }
    let ssd = original
        .iter()
        .zip(recon.iter())
        .map(|(&o, &r)| {
            let d = o as i64 - r as i64;
            (d * d) as u64
        })
        .sum();
    ResidualOutcome {
        bits,
        transform_samples,
        ssd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp(v: u8) -> Qp {
        Qp::new(v).expect("valid QP")
    }

    #[test]
    fn perfect_prediction_costs_one_bit_per_block() {
        let original = vec![100u8; 64];
        let prediction = original.clone();
        let mut w = BitWriter::new();
        let out = code_residual(&original, &prediction, 8, 8, 8, qp(32), &mut w);
        assert_eq!(out.bits, 1); // single empty coded_block_flag
        assert_eq!(out.recon, original);
        assert_eq!(out.ssd, 0);
        assert_eq!(out.transform_samples, 64);
    }

    #[test]
    fn low_qp_reconstructs_nearly_exactly() {
        let original: Vec<u8> = (0..256).map(|i| ((i * 13) % 200 + 20) as u8).collect();
        let prediction = vec![128u8; 256];
        let mut w = BitWriter::new();
        let out = code_residual(&original, &prediction, 16, 16, 8, qp(4), &mut w);
        // QP4 step = 1: error per sample ≤ ~1.
        let max_err = original
            .iter()
            .zip(&out.recon)
            .map(|(&a, &b)| (a as i16 - b as i16).abs())
            .max()
            .unwrap();
        assert!(max_err <= 2, "max_err={max_err}");
        assert!(out.bits > 64, "rich residual must cost real bits");
    }

    #[test]
    fn higher_qp_fewer_bits_more_distortion() {
        let original: Vec<u8> = (0..256)
            .map(|i| (128.0 + 60.0 * ((i as f64) * 0.37).sin()) as u8)
            .collect();
        let prediction = vec![128u8; 256];
        let mut w22 = BitWriter::new();
        let fine = code_residual(&original, &prediction, 16, 16, 8, qp(22), &mut w22);
        let mut w42 = BitWriter::new();
        let coarse = code_residual(&original, &prediction, 16, 16, 8, qp(42), &mut w42);
        assert!(coarse.bits < fine.bits, "rate must fall with QP");
        assert!(coarse.ssd >= fine.ssd, "distortion must rise with QP");
    }

    #[test]
    fn recon_improves_on_prediction() {
        let original: Vec<u8> = (0..64).map(|i| (i * 4) as u8).collect();
        let prediction = vec![0u8; 64];
        let pred_ssd: u64 = original.iter().map(|&o| (o as u64) * (o as u64)).sum();
        let mut w = BitWriter::new();
        let out = code_residual(&original, &prediction, 8, 8, 8, qp(27), &mut w);
        assert!(
            out.ssd < pred_ssd / 4,
            "coding should fix most of the error"
        );
    }

    #[test]
    fn works_with_4x4_transforms() {
        let original = vec![77u8; 64];
        let prediction = vec![80u8; 64];
        let mut w = BitWriter::new();
        let out = code_residual(&original, &prediction, 8, 8, 4, qp(10), &mut w);
        assert_eq!(out.transform_samples, 64);
        assert!(out.ssd <= 64);
    }

    #[test]
    fn int_path_reconstruction_tracks_f64_path() {
        let original: Vec<u8> = (0..256).map(|i| ((i * 13) % 200 + 20) as u8).collect();
        let prediction = vec![128u8; 256];
        let mut scratch = ResidualScratch::default();
        let mut recon = Vec::new();
        let mut w = BitWriter::new();
        let out = code_residual_into(
            &original,
            &prediction,
            16,
            16,
            8,
            qp(22),
            TxPath::Int,
            &mut w,
            &mut scratch,
            &mut recon,
        );
        assert!(out.bits > 64);
        assert_eq!(out.transform_samples, 256);
        let mut wf = BitWriter::new();
        let f64_out = code_residual(&original, &prediction, 16, 16, 8, qp(22), &mut wf);
        // Near-boundary coefficients may flip one quantization level,
        // so the bound is one step plus the transform divergence.
        let bound = qp(22).step_size().ceil() as i32 + transform::int::MAX_ABS_DIFF_VS_F64;
        let max_diff = recon
            .iter()
            .zip(&f64_out.recon)
            .map(|(&a, &b)| (a as i32 - b as i32).abs())
            .max()
            .unwrap();
        assert!(
            max_diff <= bound,
            "int recon diverged from f64 recon by {max_diff} (bound {bound})"
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_unaligned_regions() {
        let buf = vec![0u8; 12 * 8];
        let mut w = BitWriter::new();
        code_residual(&buf, &buf, 12, 8, 8, qp(32), &mut w);
    }
}

//! Regenerates **Fig. 4**: average power savings of the proposed
//! approach vs the baseline \[19\] at equal throughput, for 1–12 users.
//!
//! Run: `cargo run --release -p medvt-bench --bin fig4`

use medvt_bench::{baseline_profiles, proposed_profiles, write_artifact, Scale};
use medvt_core::{Approach, ServerConfig, ServerSim};
use serde::Serialize;

const USER_COUNTS: [usize; 9] = [1, 2, 3, 4, 5, 6, 8, 10, 12];

#[derive(Debug, Serialize)]
struct Fig4Point {
    users: usize,
    proposed_w: f64,
    baseline_w: f64,
    savings_pct: f64,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("profiling suites…");
    let prop_profiles = proposed_profiles(scale);
    let base_profiles = baseline_profiles(scale);
    let sim = ServerSim::new(ServerConfig::default());

    println!("Fig. 4 — power savings (%) vs number of users (equal throughput)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "users", "proposed(W)", "[19](W)", "savings%"
    );
    let mut points = Vec::new();
    for &n in &USER_COUNTS {
        let base = sim.serve_fixed(&base_profiles, n, Approach::Baseline);
        let prop = sim.serve_fixed(&prop_profiles, n, Approach::Proposed);
        match (base, prop) {
            (Some(b), Some(p)) => {
                let savings = (b.avg_power_w - p.avg_power_w) / b.avg_power_w * 100.0;
                println!(
                    "{:>6} {:>12.1} {:>12.1} {:>10.1}",
                    n, p.avg_power_w, b.avg_power_w, savings
                );
                points.push(Fig4Point {
                    users: n,
                    proposed_w: p.avg_power_w,
                    baseline_w: b.avg_power_w,
                    savings_pct: savings,
                });
            }
            _ => {
                println!("{n:>6} {:>12} {:>12} {:>10}", "-", "infeasible", "-");
            }
        }
    }

    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        println!(
            "\nshape: savings grow from {:.0}% at {} user(s) toward {:.0}% at {} users (paper: up to ~44%)",
            first.savings_pct, first.users, last.savings_pct, last.users
        );
        let avg: f64 = points.iter().map(|p| p.savings_pct).sum::<f64>() / points.len() as f64;
        println!("shape: mean savings across the sweep {avg:.0}%");
    }

    let path = write_artifact("fig4", &points);
    println!("artifact: {}", path.display());
}

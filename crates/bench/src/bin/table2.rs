//! Regenerates **Table II**: PSNR, bitrate and number of users served
//! by the proposed approach vs the baseline \[19\] when the user queue is
//! always full on the 32-core server.
//!
//! Run: `cargo run --release -p medvt-bench --bin table2`

use medvt_bench::{backend_from_env, baseline_profiles, proposed_profiles, write_artifact, Scale};
use medvt_core::{Approach, ServerConfig, ServerReport, ServerSim};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Table2 {
    backend: String,
    proposed: ServerReport,
    baseline: ServerReport,
    user_ratio: f64,
}

fn print_block(r: &ServerReport) {
    println!(
        "{:<10}  Max  {:>6.1}  {:>6.2}  {:>4}",
        r.approach.label(),
        r.psnr_db.max,
        r.bitrate_mbps.max,
        ""
    );
    println!(
        "{:<10}  Min  {:>6.1}  {:>6.2}  {:>4}",
        "", r.psnr_db.min, r.bitrate_mbps.min, ""
    );
    println!(
        "{:<10}  Avg  {:>6.1}  {:>6.2}  {:>4}",
        "", r.psnr_db.avg, r.bitrate_mbps.avg, r.users_served
    );
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("profiling the 10-video suite (proposed)…");
    let prop_profiles = proposed_profiles(scale);
    eprintln!("profiling the 10-video suite (baseline [19])…");
    let base_profiles = baseline_profiles(scale);

    let sim = ServerSim::new(ServerConfig::default());
    let (backend_name, mut backend) = backend_from_env(sim.config());
    eprintln!("serving on the `{backend_name}` backend…");
    let proposed = sim.serve_max_on(&mut backend, &prop_profiles, Approach::Proposed);
    let baseline = sim.serve_max_on(&mut backend, &base_profiles, Approach::Baseline);

    println!("\nTable II — PSNR, bitrate and number of served users");
    println!(
        "{:<10}  {:<4} {:>6}  {:>6}  {:>5}",
        "", "", "PSNR", "Mbps", "users"
    );
    print_block(&proposed);
    print_block(&baseline);

    let ratio = proposed.users_served as f64 / baseline.users_served.max(1) as f64;
    println!(
        "\nshape: proposed serves {:.2}x the users of [19] (paper ≈ 1.5-1.6x)",
        ratio
    );
    println!(
        "shape: PSNR floors {:.1} vs {:.1} dB — no quality degradation (paper: ~39.9/39.7)",
        proposed.psnr_db.min, baseline.psnr_db.min
    );
    println!(
        "shape: deadline hit rates {:.0}% / {:.0}%",
        proposed.on_time_rate() * 100.0,
        baseline.on_time_rate() * 100.0
    );

    let artifact = Table2 {
        backend: backend_name.to_string(),
        proposed,
        baseline,
        user_ratio: ratio,
    };
    let path = write_artifact("table2", &artifact);
    println!("artifact: {}", path.display());
}

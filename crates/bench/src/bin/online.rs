//! Online serving experiment: replays synthetic arrival traces
//! (Poisson arrivals, heavy-tailed Pareto session lengths) through the
//! sharded admission-control subsystem on the paper's 4-socket Xeon
//! model.
//!
//! Three sections, one artifact (`online_serving.json`):
//!
//! * **policy comparison** — a calibrated three-tier user mix (tile
//!   costs sized so headroom-padded tiles pack cores exactly) run
//!   under every [`ShardPolicy`]. Packing never overloads, so every
//!   policy serves at a perfect on-time rate and the comparison
//!   isolates pure admission throughput: least-loaded must sustain
//!   strictly more concurrent users than blind round-robin.
//! * **suite replay** — the profiled medical suite (plus 1.8× premium
//!   variants) under least-loaded, on both `SimBackend` and
//!   `ThreadPoolBackend` shards: realistic admit/evict churn, and the
//!   decision streams must match across backends bit for bit.
//! * **heterogeneous shards** — big.LITTLE sockets plus big-only and
//!   LITTLE-only clusters (effective capacities 5.8/5.8/4.0/1.8
//!   reference cores): speed-aware placement must strictly beat
//!   speed-blind placement on worst-core finish time, admission runs
//!   against per-shard speed-weighted capacity, and sim/pool decision
//!   parity holds on asymmetric cores too.
//!
//! Honours `MEDVT_SCALE` / `MEDVT_OUT` like the other experiment
//! binaries.

use medvt_admission::{
    synthesize_trace, EventKind as AdmissionKind, OnlineReport, ShardPolicy, TraceConfig,
};
use medvt_bench::{proposed_profiles, synthetic_profile, write_artifact, Scale};
use medvt_core::{ServerConfig, ServerSim, VideoProfile};
use medvt_mpsoc::Platform;
use medvt_runtime::{SimBackend, ThreadPoolBackend};
use medvt_sched::{place_threads, place_threads_on, UserDemand};
use medvt_telemetry::FlightRecorder;
use serde::Serialize;

const HORIZON: usize = 480;

/// Three service tiers whose headroom-padded tiles are exactly a
/// quarter slot: 4 pack a core with zero waste, so any admitted mix
/// runs misses-free and the shard policies differ only in throughput.
fn tier_profiles(headroom: f64) -> Vec<VideoProfile> {
    let unit = (1.0 / 24.0) * 0.25 / headroom;
    vec![
        synthetic_profile("tier-light", "brain", 2, unit), // 0.5 cores
        synthetic_profile("tier-standard", "spine", 6, unit), // 1.5 cores
        synthetic_profile("tier-heavy", "cardiac", 10, unit), // 2.5 cores
    ]
}

/// A heavier variant of `profile`: the same video at a premium tier
/// costing `factor`× the CPU time.
fn scaled(profile: &VideoProfile, factor: f64, suffix: &str) -> VideoProfile {
    let mut p = profile.clone();
    p.name = format!("{}-{suffix}", p.name);
    for frame in &mut p.frames {
        for tile in &mut frame.tiles {
            tile.fmax_secs *= factor;
            tile.cycles = (tile.cycles as f64 * factor) as u64;
        }
    }
    p
}

/// Per-GOP-boundary transients of an online run, read back from the
/// flight recorder's control ring: the queue-depth series the paper's
/// §III-D2 queue discussion is about, plus cumulative admit/evict
/// counts so churn is visible over time, not just in the end totals.
#[derive(Debug, Serialize)]
struct TransientSeries {
    /// GOP-boundary slots the series samples (one entry per boundary).
    boundary_slots: Vec<usize>,
    /// Request-queue depth right after each boundary's admissions.
    queue_depth: Vec<u32>,
    /// Users admitted up to and including each boundary.
    cumulative_admissions: Vec<usize>,
    /// Users evicted up to and including each boundary.
    cumulative_evictions: Vec<usize>,
    /// Telemetry events lost to bounded ring retention (0 means the
    /// series is complete).
    dropped_events: u64,
}

impl TransientSeries {
    /// Assembles the series from a run's recorder and decision log.
    fn from_run(rec: &FlightRecorder, report: &OnlineReport) -> TransientSeries {
        let depths = rec.queue_depths();
        let boundary_slots: Vec<usize> = depths.iter().map(|&(s, _)| s as usize).collect();
        let queue_depth: Vec<u32> = depths.iter().map(|&(_, d)| d).collect();
        let cumulative = |kind: AdmissionKind| -> Vec<usize> {
            boundary_slots
                .iter()
                .map(|&slot| {
                    report
                        .events
                        .iter()
                        .filter(|e| e.kind == kind && e.slot <= slot)
                        .count()
                })
                .collect()
        };
        TransientSeries {
            cumulative_admissions: cumulative(AdmissionKind::Admit),
            cumulative_evictions: cumulative(AdmissionKind::Evict),
            boundary_slots,
            queue_depth,
            dropped_events: rec.dropped(),
        }
    }
}

#[derive(Debug, Serialize)]
struct PolicyResult {
    policy: String,
    admissions: usize,
    evictions: usize,
    departures: usize,
    abandoned: usize,
    rejected: usize,
    queued_at_end: usize,
    mean_queue_wait_slots: f64,
    avg_concurrent_users: f64,
    peak_concurrent_users: usize,
    on_time_rate: f64,
    energy_j: f64,
    shard_labels: Vec<String>,
    shard_capacity_cores: Vec<f64>,
    avg_active_cores_per_shard: Vec<f64>,
    peak_users_per_shard: Vec<usize>,
    admitted_per_shard: Vec<usize>,
    /// Boundary-by-boundary queue/churn series — captured only where
    /// the run was served with a flight recorder attached.
    transient: Option<TransientSeries>,
}

impl From<&OnlineReport> for PolicyResult {
    fn from(report: &OnlineReport) -> Self {
        PolicyResult {
            policy: report.shard_policy.clone(),
            admissions: report.admissions,
            evictions: report.evictions,
            departures: report.departures,
            abandoned: report.abandoned,
            rejected: report.rejected,
            queued_at_end: report.queued_at_end,
            mean_queue_wait_slots: report.mean_queue_wait_slots,
            avg_concurrent_users: report.avg_concurrent_users,
            peak_concurrent_users: report.peak_concurrent_users,
            on_time_rate: report.on_time_rate(),
            energy_j: report.energy_j,
            shard_labels: report.shards.iter().map(|s| s.label.clone()).collect(),
            shard_capacity_cores: report.shards.iter().map(|s| s.capacity_cores).collect(),
            avg_active_cores_per_shard: report.shards.iter().map(|s| s.avg_active_cores).collect(),
            peak_users_per_shard: report.shards.iter().map(|s| s.peak_users).collect(),
            admitted_per_shard: report.shards.iter().map(|s| s.admitted).collect(),
            transient: None,
        }
    }
}

#[derive(Debug, Serialize)]
struct PolicyComparison {
    workload: String,
    horizon_slots: usize,
    arrivals: usize,
    policies: Vec<PolicyResult>,
    least_loaded_vs_round_robin_concurrency_gain: f64,
    on_time_rates_equal: bool,
}

#[derive(Debug, Serialize)]
struct SuiteReplay {
    profiles: usize,
    horizon_slots: usize,
    arrivals: usize,
    result: PolicyResult,
    pool_backend_decisions_match_sim: bool,
}

#[derive(Debug, Serialize)]
struct HeterogeneousScenario {
    /// Shard backends: two big.LITTLE sockets, one big-only cluster,
    /// one LITTLE-only cluster — four shards of three capacities.
    shard_labels: Vec<String>,
    shard_capacity_cores: Vec<f64>,
    /// Worst-core finish time (in slots) of speed-aware vs speed-blind
    /// placement for the same mixed-demand workload on one big.LITTLE
    /// socket.
    speed_aware_worst_finish_slots: f64,
    speed_blind_worst_finish_slots: f64,
    policies: Vec<PolicyResult>,
    least_loaded_vs_round_robin_concurrency_gain: f64,
    pool_backend_decisions_match_sim: bool,
}

#[derive(Debug, Serialize)]
struct OnlineArtifact {
    scale: String,
    platform: String,
    sockets: usize,
    cores_per_socket: usize,
    policy_comparison: PolicyComparison,
    suite_replay: SuiteReplay,
    heterogeneous: HeterogeneousScenario,
}

/// The shard platforms of the heterogeneous scenario: two big.LITTLE
/// sockets plus a big-only and a LITTLE-only cluster — four shards
/// spanning three different effective capacities (5.8 / 4.0 / 1.8
/// reference cores).
fn hetero_shard_platforms() -> Vec<Platform> {
    let bl = Platform::big_little();
    let big_only = Platform::with_classes(
        "big-only cluster",
        1,
        vec![bl.classes()[0].clone()],
        bl.dvfs_transition_secs,
    );
    let little_only = Platform::with_classes(
        "LITTLE-only cluster",
        1,
        vec![bl.classes()[1].clone()],
        bl.dvfs_transition_secs,
    );
    vec![bl.socket_view(0), bl.socket_view(1), big_only, little_only]
}

/// Serves the tier mix across heterogeneous shards and demonstrates
/// speed-aware placement on a big.LITTLE socket.
fn heterogeneous_scenario(sim: &ServerSim) -> HeterogeneousScenario {
    let headroom = sim.config().admission_headroom;
    let power = sim.config().power;
    let slot = 1.0 / sim.config().fps;
    let platforms = hetero_shard_platforms();
    let capacities: Vec<f64> = platforms.iter().map(Platform::speed_capacity).collect();
    let labels: Vec<String> = platforms.iter().map(|p| p.name.clone()).collect();
    println!("heterogeneous shards: {labels:?} capacities {capacities:?}");

    // Speed-aware vs speed-blind placement on one big.LITTLE socket:
    // a mixed-demand frame (four large tiles, four mid tiles) whose
    // worst-core finish time only balances when loads are normalized
    // by core speed.
    let speeds = platforms[0].core_speeds();
    let mixed = UserDemand::new(
        0,
        vec![
            slot * 0.9,
            slot * 0.9,
            slot * 0.9,
            slot * 0.9,
            slot * 0.5,
            slot * 0.5,
            slot * 0.5,
            slot * 0.5,
        ],
    );
    let aware = place_threads_on(&speeds, slot, std::slice::from_ref(&mixed));
    let blind = place_threads(speeds.len(), slot, &[mixed]);
    let aware_worst = aware.worst_finish_secs(&speeds) / slot;
    let blind_worst = blind.worst_finish_secs(&speeds) / slot;
    println!(
        "speed-aware worst-core finish {aware_worst:.3} slots vs speed-blind {blind_worst:.3}"
    );
    assert!(
        aware_worst < blind_worst,
        "speed-aware placement must strictly lower the worst-core finish time \
         ({aware_worst:.3} vs {blind_worst:.3} slots)"
    );

    // Tier mix over the unequal shards, every policy.
    let tiers = tier_profiles(headroom);
    let trace = synthesize_trace(&TraceConfig {
        horizon_slots: HORIZON,
        arrivals_per_slot: 0.4,
        min_session_slots: 72,
        tail_alpha: 1.4,
        profiles: tiers.len(),
        seed: 4242,
    });
    let mut policies = Vec::new();
    for policy in [
        ShardPolicy::LeastLoaded,
        ShardPolicy::RoundRobin,
        ShardPolicy::ContentAffinity,
    ] {
        let shards: Vec<SimBackend> = platforms
            .iter()
            .map(|p| SimBackend::new(p.clone(), power))
            .collect();
        let report = medvt_admission::serve_online(
            &sim.online_config(HORIZON, policy),
            &tiers,
            &trace,
            shards,
        );
        let result = PolicyResult::from(&report);
        print_result(&result);
        policies.push(result);
    }
    let gain = policies[0].avg_concurrent_users / policies[1].avg_concurrent_users.max(1e-9);
    println!("heterogeneous: least-loaded sustains {gain:.3}x round-robin's concurrent users");
    assert!(
        gain >= 1.0 - 1e-9,
        "least-loaded must not trail round-robin on unequal shards"
    );

    // Backend parity holds on heterogeneous shards too: thread-pool
    // shards replay the analytical decision stream bit for bit.
    let sim_shards: Vec<SimBackend> = platforms
        .iter()
        .map(|p| SimBackend::new(p.clone(), power))
        .collect();
    let pool_shards: Vec<ThreadPoolBackend> = platforms
        .iter()
        .map(|p| ThreadPoolBackend::with_workers(p.clone(), power, 2))
        .collect();
    let online = sim.online_config(HORIZON, ShardPolicy::LeastLoaded);
    let analytical = medvt_admission::serve_online(&online, &tiers, &trace, sim_shards);
    let pool = medvt_admission::serve_online(&online, &tiers, &trace, pool_shards);
    let decisions_match = pool.events == analytical.events
        && pool.windows == analytical.windows
        && pool.window_misses == analytical.window_misses;
    println!("heterogeneous pool decisions match sim: {decisions_match}");
    assert!(
        decisions_match,
        "heterogeneous thread-pool shards diverged from the analytical stream"
    );

    HeterogeneousScenario {
        shard_labels: labels,
        shard_capacity_cores: capacities,
        speed_aware_worst_finish_slots: aware_worst,
        speed_blind_worst_finish_slots: blind_worst,
        policies,
        least_loaded_vs_round_robin_concurrency_gain: gain,
        pool_backend_decisions_match_sim: decisions_match,
    }
}

fn print_result(r: &PolicyResult) {
    println!(
        "{:<16} admitted {:>3}  evicted {:>2}  queue-wait {:>5.1}  \
         avg-concurrent {:>5.2}  on-time {:>5.1}%",
        r.policy,
        r.admissions,
        r.evictions,
        r.mean_queue_wait_slots,
        r.avg_concurrent_users,
        r.on_time_rate * 100.0
    );
}

fn main() {
    let scale = Scale::from_env();
    let cfg = ServerConfig::default();
    let sim = ServerSim::new(cfg.clone());

    // ── Policy comparison on the calibrated tier mix ────────────────
    let tiers = tier_profiles(cfg.admission_headroom);
    let tier_trace = synthesize_trace(&TraceConfig {
        horizon_slots: HORIZON,
        arrivals_per_slot: 0.5,
        min_session_slots: 72,
        tail_alpha: 1.4,
        profiles: tiers.len(),
        seed: 2018,
    });
    println!(
        "tier trace: {} arrivals over {HORIZON} slots, {} tiers",
        tier_trace.len(),
        tiers.len()
    );
    let mut policies = Vec::new();
    for policy in [
        ShardPolicy::LeastLoaded,
        ShardPolicy::RoundRobin,
        ShardPolicy::ContentAffinity,
    ] {
        // Served with a flight recorder attached so the artifact also
        // carries the per-boundary queue-depth/churn transients; the
        // recorder never alters decisions, so the policy comparison is
        // unchanged.
        let online = sim.online_config(HORIZON, policy);
        let shards: Vec<SimBackend> = (0..cfg.platform.sockets)
            .map(|s| SimBackend::new(cfg.platform.socket_view(s), cfg.power))
            .collect();
        let rec = FlightRecorder::new(cfg.platform.sockets, 1 << 14);
        let report = medvt_admission::serve_online_with(&online, &tiers, &tier_trace, shards, &rec);
        let transient = TransientSeries::from_run(&rec, &report);
        assert_eq!(
            transient.dropped_events, 0,
            "control-ring retention too small for the transient series"
        );
        let mut result = PolicyResult::from(&report);
        result.transient = Some(transient);
        print_result(&result);
        policies.push(result);
    }
    let (ll, rr) = (&policies[0], &policies[1]);
    let gain = ll.avg_concurrent_users / rr.avg_concurrent_users.max(1e-9);
    let equal_on_time = (ll.on_time_rate - rr.on_time_rate).abs() < 1e-12;
    println!(
        "least-loaded sustains {gain:.3}x round-robin's concurrent users \
         ({:.2} vs {:.2}); on-time rates equal: {equal_on_time}",
        ll.avg_concurrent_users, rr.avg_concurrent_users
    );
    assert!(
        ll.avg_concurrent_users > rr.avg_concurrent_users,
        "least-loaded must sustain strictly more concurrent users than round-robin"
    );
    assert!(
        equal_on_time,
        "tier mix must keep both policies at the same on-time rate"
    );

    // ── Suite replay: realism + backend parity ──────────────────────
    let mut profiles = proposed_profiles(scale);
    let heavy: Vec<VideoProfile> = profiles
        .iter()
        .step_by(2)
        .map(|p| scaled(p, 1.8, "premium"))
        .collect();
    profiles.extend(heavy);
    let suite_trace = synthesize_trace(&TraceConfig {
        horizon_slots: HORIZON,
        arrivals_per_slot: 0.6,
        min_session_slots: 72,
        tail_alpha: 1.4,
        profiles: profiles.len(),
        seed: 7,
    });
    println!(
        "suite trace: {} arrivals over {HORIZON} slots, {} profiles",
        suite_trace.len(),
        profiles.len()
    );
    let online = sim.online_config(HORIZON, ShardPolicy::LeastLoaded);
    let analytical = sim.serve_online(&profiles, &suite_trace, &online);
    let shards: Vec<ThreadPoolBackend> = (0..cfg.platform.sockets)
        .map(|s| ThreadPoolBackend::with_workers(cfg.platform.socket_view(s), cfg.power, 2))
        .collect();
    let pool = sim.serve_online_on(shards, &profiles, &suite_trace, &online);
    let decisions_match = pool.events == analytical.events
        && pool.windows == analytical.windows
        && pool.window_misses == analytical.window_misses;
    let suite_result = PolicyResult::from(&analytical);
    print_result(&suite_result);
    println!("pool backend decisions match sim: {decisions_match}");
    assert!(
        decisions_match,
        "thread-pool shards diverged from the analytical decision stream"
    );

    // ── Heterogeneous shards: big.LITTLE sockets of unequal capacity ─
    let hetero = heterogeneous_scenario(&sim);

    let artifact = OnlineArtifact {
        scale: format!("{scale:?}"),
        platform: cfg.platform.name.clone(),
        sockets: cfg.platform.sockets,
        cores_per_socket: cfg.platform.cores_per_socket(),
        policy_comparison: PolicyComparison {
            workload: "calibrated three-tier mix (0.5/1.5/2.5 cores per user)".into(),
            horizon_slots: HORIZON,
            arrivals: tier_trace.len(),
            policies,
            least_loaded_vs_round_robin_concurrency_gain: gain,
            on_time_rates_equal: equal_on_time,
        },
        suite_replay: SuiteReplay {
            profiles: profiles.len(),
            horizon_slots: HORIZON,
            arrivals: suite_trace.len(),
            result: suite_result,
            pool_backend_decisions_match_sim: decisions_match,
        },
        heterogeneous: hetero,
    };
    let path = write_artifact("online_serving", &artifact);
    println!("artifact: {}", path.display());
}

//! Ablation study: how much each design choice of the paper
//! contributes, isolated one at a time (the extension benches DESIGN.md
//! §8 calls for).
//!
//! Dimensions:
//! 1. **Re-tiling** — content-aware ring tiling vs uniform 4×3 grid,
//!    both with the proposed ME policy and QP ladder.
//! 2. **ME policy** — proposed vs plain hexagon vs TZ on the
//!    content-aware tiling.
//! 3. **DVFS policy** — stretch-to-deadline vs race-to-idle vs
//!    pinned-f_max at equal allocation.
//!
//! Run: `cargo run --release -p medvt-bench --bin ablation`

use medvt_bench::{pipeline_config, write_artifact, Scale};
use medvt_core::{
    profile_video, ContentAwareController, MePolicy, UniformMeController, VideoProfile,
};
use medvt_encoder::{CostModel, EncoderConfig, Qp, SearchSpec, VideoEncoder};
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt_frame::VideoClip;
use medvt_motion::HexOrientation;
use medvt_mpsoc::{simulate_slot, DvfsPolicy, Platform, PowerModel};
use medvt_sched::WorkloadLut;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct AblationRow {
    variant: String,
    frame_secs: f64,
    psnr_db: f64,
    bitrate_mbps: f64,
}

fn clip(scale: Scale) -> VideoClip {
    PhantomVideo::builder(BodyPart::LungChest)
        .resolution(scale.resolution())
        .motion(MotionPattern::Pan { dx: 1.0, dy: 0.3 })
        .seed(42)
        .build()
        .capture(scale.frames().min(17))
}

fn profile_proposed(scale: Scale) -> VideoProfile {
    let mut ctl = ContentAwareController::new(pipeline_config(scale), WorkloadLut::new());
    profile_video(
        "ablation",
        "lung_chest",
        &clip(scale),
        &mut ctl,
        &EncoderConfig::default(),
        false,
    )
}

fn row_uniform(scale: Scale, label: &str, policy: MePolicy) -> AblationRow {
    let cost = medvt_bench::cost_model(scale);
    let mut ctl = UniformMeController::new(4, 3, Qp::new(32).expect("valid"), policy);
    let stats = VideoEncoder::new(EncoderConfig::default())
        .parallel(true)
        .encode_clip(&clip(scale), &mut ctl);
    let cycles: u64 = stats
        .frames
        .iter()
        .flat_map(|f| f.tiles.iter())
        .map(|t| cost.tile_cycles(t))
        .sum();
    AblationRow {
        variant: label.to_string(),
        frame_secs: cycles as f64 / 3.6e9 / stats.frames.len() as f64,
        psnr_db: stats.mean_psnr(),
        bitrate_mbps: stats.bitrate_mbps(),
    }
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "Ablation study ({} @ {})\n",
        scale.frames().min(17),
        scale.resolution()
    );

    // --- 1+2: pipeline variants ------------------------------------
    let full = profile_proposed(scale);
    let mut rows = vec![AblationRow {
        variant: "full pipeline (retile + QP ladder + biomed ME)".into(),
        frame_secs: full.mean_frame_secs(),
        psnr_db: full.mean_psnr_db,
        bitrate_mbps: full.bitrate_mbps,
    }];
    rows.push(row_uniform(
        scale,
        "uniform 4x3 + biomed ME (no retiling/QP ladder)",
        MePolicy::Proposed,
    ));
    rows.push(row_uniform(
        scale,
        "uniform 4x3 + hexagon ME",
        MePolicy::Fixed(SearchSpec::Hexagon(HexOrientation::Horizontal)),
    ));
    rows.push(row_uniform(
        scale,
        "uniform 4x3 + TZ ME",
        MePolicy::Fixed(SearchSpec::Tz),
    ));

    println!(
        "{:<50} {:>11} {:>8} {:>8}",
        "variant", "s/frame", "PSNR", "Mbps"
    );
    for r in &rows {
        println!(
            "{:<50} {:>11.4} {:>8.2} {:>8.3}",
            r.variant, r.frame_secs, r.psnr_db, r.bitrate_mbps
        );
    }
    let me_gain = rows[3].frame_secs / rows[1].frame_secs;
    let tiling_gain = rows[1].frame_secs / rows[0].frame_secs;
    println!("\ncontribution: biomed ME alone {me_gain:.2}x vs TZ;");
    println!("              content-aware tiling/QP a further {tiling_gain:.2}x on top\n");

    // --- 3: DVFS policies at identical load -------------------------
    let platform = Platform::quad_core();
    let power = PowerModel::default();
    let slot = 1.0 / 24.0;
    let loads = vec![slot * 0.3, slot * 0.55, slot * 0.8, 0.0];
    let prev = vec![platform.fmin(); 4];
    println!("{:<22} {:>10} {:>8}", "DVFS policy", "power(W)", "misses");
    let mut dvfs_rows = Vec::new();
    for (name, policy) in [
        ("stretch-to-deadline", DvfsPolicy::StretchToDeadline),
        ("race-to-idle", DvfsPolicy::RaceToIdle),
        ("pinned at fmax [19]", DvfsPolicy::PinnedMax),
    ] {
        let report = simulate_slot(&platform, &power, policy, &loads, &prev, slot);
        println!(
            "{:<22} {:>10.2} {:>8}",
            name,
            report.power_w(),
            report.deadline_misses
        );
        dvfs_rows.push((name.to_string(), report.power_w()));
    }
    let stretch = dvfs_rows[0].1;
    let pinned = dvfs_rows[2].1;
    println!(
        "\ncontribution: per-core DVFS saves {:.0}% vs pinned-rail operation",
        (pinned - stretch) / pinned * 100.0
    );

    let path = write_artifact("ablation", &(rows, dvfs_rows));
    println!("artifact: {}", path.display());

    // Ensure the cost model used matches the experiment scale.
    let _ = CostModel::default();
}

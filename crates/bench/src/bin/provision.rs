//! Provisioning experiment: cost vs QoS across rental policies, plus
//! budget-constrained serving with deadline-class degradation.
//!
//! Three sections, one artifact (`provision_bench.json`):
//!
//! * **Pareto sweep** — an overload trace (Poisson arrivals ≫ service
//!   rate, heavy-tailed sessions, three honest service tiers at 1/2/3
//!   cores) is served on fleets rented by cheapest-fit, fastest-fit
//!   and Li-style QoS-aware provisioning at per-window rental budgets
//!   of 12/24/36 credits (the lcm of the catalogue prices, so the
//!   greedy extremes spend *exactly* the budget and points are
//!   cost-comparable). Each (policy, budget) point records spend,
//!   capacity, admissions and on-time rate — the cost-vs-on-time
//!   Pareto front.
//! * **equal-cost domination** — at every equal-spend sweep point the
//!   QoS-aware fleet must weakly dominate cheapest-fit on on-time
//!   rate, and beat it outright on served users somewhere: capacity
//!   per credit is what deadline-meeting buys.
//! * **budgeted serving + degradation** — a fixed big.LITTLE fleet
//!   with a finite `CostPlan` and `degrade_on_evict` under a lying
//!   headroom (0.6): evictions re-enter one deadline class lower,
//!   the replayed spend trajectory never exceeds the budget, and the
//!   decision stream with an *unlimited* plan stays bit-identical to
//!   the frozen reference controller.
//!
//! Honours `MEDVT_OUT` like the other experiment binaries.

use medvt_admission::{
    forecast_demand_cores, preset_catalogue, provision_fleet, replay_cost, serve_online,
    serve_online_reference, synthesize_trace, CheapestFit, CostPlan, FastestFit, OnlineConfig,
    ProvisionPolicy, QosAware, TraceConfig, UserRequest,
};
use medvt_bench::{live_online_config, synthetic_profile, write_artifact};
use medvt_core::VideoProfile;
use medvt_mpsoc::{CostModel, Platform, PowerModel};
use medvt_runtime::SimBackend;
use medvt_telemetry::{EventKind as TelKind, FlightRecorder};
use serde::Serialize;

const HORIZON: usize = 192;
/// Rental budgets swept, credits per GOP window. 12 is the lcm of the
/// catalogue prices {4, 3, 2, 1, 6}: every greedy policy lands on an
/// identical spend, so the on-time comparison is at exactly equal cost.
const BUDGETS: [u64; 3] = [12, 24, 36];

#[derive(Serialize)]
struct CatalogueRow {
    name: String,
    price_credits: u64,
    capacity_cores: f64,
    cores_per_credit: f64,
}

#[derive(Serialize)]
struct SweepPoint {
    policy: String,
    budget_credits: u64,
    spent_credits: u64,
    fleet: Vec<String>,
    capacity_cores: f64,
    admissions: usize,
    rejected: usize,
    avg_concurrent_users: f64,
    on_time_rate: f64,
}

#[derive(Serialize)]
struct DominationPoint {
    budget_credits: u64,
    equal_spend: bool,
    qos_on_time_rate: f64,
    cheapest_on_time_rate: f64,
    qos_admissions: usize,
    cheapest_admissions: usize,
}

#[derive(Serialize)]
struct BudgetedSection {
    budget_credits_per_window: f64,
    admissions: usize,
    evictions: usize,
    downgrades: usize,
    peak_window_credits: f64,
    total_credits: f64,
    within_budget: bool,
    downgraded_events: usize,
}

#[derive(Serialize)]
struct Artifact {
    catalogue: Vec<CatalogueRow>,
    forecast_cores: f64,
    sweep: Vec<SweepPoint>,
    equal_cost_domination: Vec<DominationPoint>,
    budgeted: BudgetedSection,
    unlimited_plan_matches_reference: bool,
}

/// Three honest service tiers at exactly 1 / 2 / 3 admission cores
/// under the live config's 1.15 headroom.
fn tier_profiles() -> Vec<VideoProfile> {
    let unit = (1.0 / 24.0) * 0.25 / 1.15;
    vec![
        synthetic_profile("rent-light", "brain", 4, unit),
        synthetic_profile("rent-standard", "spine", 8, unit),
        synthetic_profile("rent-heavy", "cardiac", 12, unit),
    ]
}

fn overload_trace() -> Vec<UserRequest> {
    synthesize_trace(&TraceConfig {
        horizon_slots: HORIZON,
        arrivals_per_slot: 0.8,
        min_session_slots: 96,
        tail_alpha: 1.5,
        profiles: 3,
        seed: 77,
    })
}

fn sweep(
    catalogue: &[medvt_admission::ProvisionPreset],
    cfg: &OnlineConfig,
    tiers: &[VideoProfile],
    trace: &[UserRequest],
    forecast: f64,
) -> Vec<SweepPoint> {
    let policies: [&dyn ProvisionPolicy; 3] = [&CheapestFit, &FastestFit, &QosAware];
    let mut points = Vec::new();
    for &budget in &BUDGETS {
        for policy in policies {
            let recorder = FlightRecorder::modeled(1, 4096);
            let outcome = provision_fleet(policy, catalogue, forecast, budget, &recorder);
            let rented = recorder
                .events()
                .iter()
                .filter(|e| matches!(e.kind, TelKind::Provisioned { .. }))
                .count();
            assert_eq!(
                rented,
                outcome.chosen.len(),
                "one Provisioned event per rental"
            );
            let report = serve_online(cfg, tiers, trace, outcome.sim_shards(catalogue));
            points.push(SweepPoint {
                policy: outcome.policy.clone(),
                budget_credits: budget,
                spent_credits: outcome.spent_credits,
                fleet: outcome
                    .chosen
                    .iter()
                    .map(|&i| catalogue[i].name.clone())
                    .collect(),
                capacity_cores: outcome.capacity_cores,
                admissions: report.admissions,
                rejected: report.rejected,
                avg_concurrent_users: report.avg_concurrent_users,
                on_time_rate: report.on_time_rate(),
            });
            println!(
                "budget {budget:>2}: {:<12} spent {:>2}  capacity {:>5.1}  admitted {:>3}  on-time {:.3}",
                points.last().unwrap().policy,
                outcome.spent_credits,
                outcome.capacity_cores,
                report.admissions,
                report.on_time_rate()
            );
        }
    }
    points
}

/// At equal spend the QoS-aware fleet must never meet fewer deadlines
/// than cheapest-fit, and must serve strictly more users somewhere.
fn check_domination(points: &[SweepPoint]) -> Vec<DominationPoint> {
    let mut rows = Vec::new();
    let mut strictly_better_somewhere = false;
    for &budget in &BUDGETS {
        let find = |label: &str| {
            points
                .iter()
                .find(|p| p.budget_credits == budget && p.policy == label)
                .expect("sweep covers every (policy, budget)")
        };
        let qos = find("qos-aware");
        let cheap = find("cheapest-fit");
        let equal_spend = qos.spent_credits == cheap.spent_credits;
        if equal_spend {
            assert!(
                qos.on_time_rate >= cheap.on_time_rate - 1e-9,
                "budget {budget}: qos-aware on-time {} trails cheapest-fit {} at equal spend",
                qos.on_time_rate,
                cheap.on_time_rate
            );
            if qos.admissions > cheap.admissions {
                strictly_better_somewhere = true;
            }
        }
        rows.push(DominationPoint {
            budget_credits: budget,
            equal_spend,
            qos_on_time_rate: qos.on_time_rate,
            cheapest_on_time_rate: cheap.on_time_rate,
            qos_admissions: qos.admissions,
            cheapest_admissions: cheap.admissions,
        });
    }
    assert!(
        rows.iter().any(|r| r.equal_spend),
        "lcm budgets must produce at least one equal-spend point"
    );
    assert!(
        strictly_better_somewhere,
        "qos-aware must serve strictly more users than cheapest-fit somewhere at equal spend"
    );
    rows
}

/// Budget-constrained serving with degradation on a fixed fleet, plus
/// the unlimited-plan parity check against the frozen reference.
fn budgeted_section(tiers: &[VideoProfile], trace: &[UserRequest]) -> (BudgetedSection, bool) {
    let bl = Platform::big_little();
    let shards = || -> Vec<SimBackend> {
        (0..2)
            .map(|s| SimBackend::new(bl.socket_view(s), PowerModel::default()))
            .collect()
    };
    // Headroom 0.6 admits ~1.67x real load: sustained misses, then
    // evictions, then class degradation — under a finite budget.
    let cfg = OnlineConfig {
        headroom: 0.6,
        cost: CostPlan {
            credits_per_core_window: 1.0,
            budget_credits_per_window: 6.0,
            degrade_on_evict: true,
        },
        ..live_online_config(HORIZON)
    };
    let recorder = FlightRecorder::modeled(4, 65_536);
    let report = medvt_admission::serve_online_with(&cfg, tiers, trace, shards(), &recorder);
    let cost = replay_cost(&cfg, tiers, trace, &report);
    let downgraded_events = recorder
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TelKind::Downgraded { .. }))
        .count();
    assert!(
        cost.within_budget,
        "replayed spend {} exceeds the {}-credit window budget",
        cost.peak_window_credits, cfg.cost.budget_credits_per_window
    );
    assert!(report.evictions > 0, "the lying headroom must evict");
    assert!(
        cost.downgrades > 0,
        "evictions under degrade_on_evict must downgrade"
    );
    assert_eq!(
        cost.downgrades, downgraded_events,
        "decision-stream downgrades and telemetry events must agree"
    );
    println!(
        "budgeted: {} admissions, {} evictions, {} downgrades, peak window spend {:.2}/{:.0}",
        report.admissions,
        report.evictions,
        cost.downgrades,
        cost.peak_window_credits,
        cfg.cost.budget_credits_per_window
    );

    // Unlimited plan ≡ frozen reference, bit for bit.
    let unlimited = live_online_config(HORIZON);
    let fast = serve_online(&unlimited, tiers, trace, shards());
    let slow = serve_online_reference(&unlimited, tiers, trace, shards());
    let parity = fast.events == slow.events
        && fast.windows == slow.windows
        && fast.window_misses == slow.window_misses
        && fast.energy_j == slow.energy_j;
    println!("unlimited plan matches reference: {parity}");
    assert!(
        parity,
        "an unlimited CostPlan must replay the reference decision stream bit-identically"
    );

    (
        BudgetedSection {
            budget_credits_per_window: cfg.cost.budget_credits_per_window,
            admissions: report.admissions,
            evictions: report.evictions,
            downgrades: cost.downgrades,
            peak_window_credits: cost.peak_window_credits,
            total_credits: cost.total_credits,
            within_budget: cost.within_budget,
            downgraded_events,
        },
        parity,
    )
}

fn main() {
    let pricing = CostModel::default();
    let catalogue = preset_catalogue(&pricing);
    let rows: Vec<CatalogueRow> = catalogue
        .iter()
        .map(|p| CatalogueRow {
            name: p.name.clone(),
            price_credits: p.price_credits,
            capacity_cores: p.capacity_cores,
            cores_per_credit: p.capacity_cores / p.price_credits as f64,
        })
        .collect();
    for r in &rows {
        println!(
            "{:<18} {:>2} credits  {:>4.1} cores  {:.2} cores/credit",
            r.name, r.price_credits, r.capacity_cores, r.cores_per_credit
        );
    }

    let tiers = tier_profiles();
    let trace = overload_trace();
    let cfg = live_online_config(HORIZON);
    let forecast = forecast_demand_cores(&cfg, &tiers, &trace);
    println!(
        "forecast peak demand: {forecast:.1} cores over {} users",
        trace.len()
    );

    let sweep_points = sweep(&catalogue, &cfg, &tiers, &trace, forecast);
    let domination = check_domination(&sweep_points);
    let (budgeted, parity) = budgeted_section(&tiers, &trace);

    let path = write_artifact(
        "provision_bench",
        &Artifact {
            catalogue: rows,
            forecast_cores: forecast,
            sweep: sweep_points,
            equal_cost_domination: domination,
            budgeted,
            unlimited_plan_matches_reference: parity,
        },
    );
    println!("wrote {}", path.display());
}

//! Checks the paper's three headline claims end to end:
//!
//! 1. the proposed fast motion search gives ≈4x ME speedup,
//! 2. ≈1.6x more users served than the state of the art \[19\],
//! 3. ≈44% less power at the same throughput,
//!
//! all without compression or PSNR degradation.
//!
//! Run: `cargo run --release -p medvt-bench --bin headline`

use medvt_bench::{backend_from_env, baseline_profiles, proposed_profiles, write_artifact, Scale};
use medvt_core::{Approach, MePolicy, ServerConfig, ServerSim, UniformMeController};
use medvt_encoder::{EncoderConfig, Qp, SearchSpec, VideoEncoder};
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Headline {
    backend: String,
    me_speedup_vs_tz: f64,
    user_ratio: f64,
    power_savings_pct_at_max_common_users: f64,
    proposed_psnr_avg: f64,
    baseline_psnr_avg: f64,
}

fn main() {
    let scale = Scale::from_env();

    // Claim 1: ME speedup on a representative tiling (4x3).
    eprintln!("measuring ME speedup…");
    let clip = PhantomVideo::builder(BodyPart::Brain)
        .resolution(scale.resolution())
        .motion(MotionPattern::Pan { dx: 1.2, dy: 0.4 })
        .seed(77)
        .build()
        .capture(scale.me_frames().min(33));
    let run = |policy| {
        let mut ctl = UniformMeController::new(4, 3, Qp::new(32).expect("valid"), policy);
        VideoEncoder::new(EncoderConfig::default())
            .parallel(true)
            .encode_clip(&clip, &mut ctl)
    };
    let tz = run(MePolicy::Fixed(SearchSpec::Tz));
    let proposed_me = run(MePolicy::Proposed);
    let speedup = tz.total_sad_samples() as f64 / proposed_me.total_sad_samples().max(1) as f64;

    // Claims 2 & 3: serving capacity and power.
    eprintln!("profiling suites…");
    let prop_profiles = proposed_profiles(scale);
    let base_profiles = baseline_profiles(scale);
    let sim = ServerSim::new(ServerConfig::default());
    let (backend_name, mut backend) = backend_from_env(sim.config());
    eprintln!("serving on the `{backend_name}` backend…");
    let prop = sim.serve_max_on(&mut backend, &prop_profiles, Approach::Proposed);
    let base = sim.serve_max_on(&mut backend, &base_profiles, Approach::Baseline);
    let ratio = prop.users_served as f64 / base.users_served.max(1) as f64;
    let common = base.users_served.clamp(1, 12);
    let savings = sim
        .power_savings_percent(&prop_profiles, &base_profiles, common)
        .unwrap_or(f64::NAN);

    println!("Headline claims (paper → measured):");
    println!("  ME speedup:        4x   → {speedup:.1}x");
    println!(
        "  users served:      1.6x → {ratio:.2}x  ({} vs {})",
        prop.users_served, base.users_served
    );
    println!("  power savings:     44%  → {savings:.0}% (at {common} users)");
    println!(
        "  PSNR (avg):        no loss → proposed {:.1} dB vs [19] {:.1} dB",
        prop.psnr_db.avg, base.psnr_db.avg
    );

    let artifact = Headline {
        backend: backend_name.to_string(),
        me_speedup_vs_tz: speedup,
        user_ratio: ratio,
        power_savings_pct_at_max_common_users: savings,
        proposed_psnr_avg: prop.psnr_db.avg,
        baseline_psnr_avg: base.psnr_db.avg,
    };
    let path = write_artifact("headline", &artifact);
    println!("artifact: {}", path.display());
}

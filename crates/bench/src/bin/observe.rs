//! Flight-recorder observability bench: proves telemetry is cheap,
//! exact, and backend-independent, and exports the captured stream in
//! tool-loadable formats.
//!
//! Three sections, three artifacts:
//!
//! * **overhead gate** — the scale fleet's quick-tier populations
//!   (10³ and 10⁴ users) each served twice: recorder disabled
//!   (`NoopRecorder`, the statically compiled-out path) and enabled
//!   (`FlightRecorder` capturing every event plus
//!   counters/histograms). Each cost is the minimum wall time over
//!   `MEASURE_REPS` repetitions of the deterministic run; at the
//!   largest population the enabled run must stay within 5% relative
//!   (or 10 ms absolute, below host noise) of disabled, and at every
//!   population both runs must produce bit-identical decision streams
//!   and modeled reports.
//! * **backend event parity** — a mixed live+synthetic user population
//!   (one real tile-encoding [`medvt_core::LiveWorkload`], two
//!   profile-replay tiers) served on two quad-core shards by
//!   `SimBackend` and `ThreadPoolBackend`, each with a modeled-time
//!   flight recorder attached: the normalized (wall-stripped) event
//!   streams must match event for event, extending the repo's
//!   sim-vs-pool bit-identity invariant to telemetry.
//! * **exports** — the parity run's event stream written as
//!   `observe.trace.json` (Chrome/Perfetto `trace_event` format: load
//!   it at `ui.perfetto.dev`) and `observe_events.jsonl` (one JSON
//!   object per event), next to the `observe_bench.json` summary.
//!
//! Honours `MEDVT_SCALE` / `MEDVT_OUT` like the other experiment
//! binaries.

use medvt_admission::{
    serve_online, serve_online_with, synthesize_trace, OnlineConfig, OnlineReport, ShardPolicy,
    TraceConfig, UserRequest, Workload,
};
use medvt_bench::{live_online_config, live_workload, synthetic_profile, write_artifact, Scale};
use medvt_core::{LiveWorkload, VideoProfile};
use medvt_frame::synth::BodyPart;
use medvt_mpsoc::{DvfsPolicy, FrequencySet, Platform, PowerModel};
use medvt_runtime::{ControllerTiming, SimBackend, ThreadPoolBackend};
use medvt_telemetry::{
    chrome_trace, json_lines, CounterId, EventKind, FlightRecorder, TelemetrySnapshot,
};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

const HORIZON: usize = 192;
const GOP_SLOTS: usize = 4;
const FPS: f64 = 24.0;
const HEADROOM: f64 = 1.15;
/// Runs are deterministic, so wall-time differences between
/// repetitions are pure host noise; minima over this many repetitions
/// keep the overhead gate noise-robust.
const MEASURE_REPS: usize = 5;
/// Relative overhead budget for telemetry-enabled serving.
const GATE_RELATIVE: f64 = 0.05;
/// Absolute floor: quick-tier runs finish in milliseconds, where a 5%
/// band is smaller than scheduler jitter on a shared host.
const GATE_ABS_MS: f64 = 10.0;
/// Per-ring event retention for the overhead run: bounded by design —
/// a quick-tier sweep emits more slot events than this, the dropped
/// counters in the snapshot prove retention stayed bounded, and the
/// 128 KiB-per-ring footprint keeps the write path cache-resident.
const RING_CAPACITY: usize = 1 << 12;

/// A slot-invariant tier (same shape as the scale bench): demand never
/// changes, so the controller's steady-state fast path applies and the
/// measured delta is telemetry, not re-estimation.
struct SteadyTier {
    tiles: usize,
    secs: f64,
    class: &'static str,
}

impl Workload for SteadyTier {
    fn steady_demand(&self) -> Vec<f64> {
        vec![self.secs; self.tiles]
    }
    fn demand_at(&self, _slot: usize) -> Vec<f64> {
        vec![self.secs; self.tiles]
    }
    fn content_class(&self) -> &str {
        self.class
    }
    fn steady(&self) -> bool {
        true
    }
}

fn tiers() -> Vec<SteadyTier> {
    let unit = (1.0 / FPS) / HEADROOM;
    vec![
        SteadyTier {
            tiles: 1,
            secs: unit,
            class: "brain",
        },
        SteadyTier {
            tiles: 2,
            secs: unit,
            class: "spine",
        },
        SteadyTier {
            tiles: 4,
            secs: unit,
            class: "cardiac",
        },
    ]
}

/// The 256-core serving fleet of the scale bench.
fn fleet() -> Platform {
    Platform::new("scale fleet", 4, 64, FrequencySet::xeon_e5_2667(), 10e-6)
}

fn shards() -> Vec<SimBackend> {
    let p = fleet();
    (0..p.sockets)
        .map(|s| SimBackend::new(p.socket_view(s), PowerModel::default()))
        .collect()
}

fn online_config() -> OnlineConfig {
    OnlineConfig {
        fps: FPS,
        gop_slots: GOP_SLOTS,
        horizon_slots: HORIZON,
        headroom: HEADROOM,
        policy: DvfsPolicy::StretchToDeadline,
        shard_policy: ShardPolicy::LeastLoaded,
        evict_miss_windows: 1,
        cost: medvt_admission::CostPlan::unlimited(),
    }
}

fn trace_for(users: usize) -> Vec<UserRequest> {
    synthesize_trace(&TraceConfig {
        horizon_slots: HORIZON,
        arrivals_per_slot: users as f64 / HORIZON as f64,
        min_session_slots: 48,
        tail_alpha: 1.4,
        profiles: 3,
        seed: 2018,
    })
}

/// A report with its wall-clock controller costs dropped — what must
/// be bit-identical between the recorder-on and recorder-off runs.
fn stripped(report: &OnlineReport) -> OnlineReport {
    let mut r = report.clone();
    r.controller = ControllerTiming::default();
    r
}

#[derive(Debug, Serialize)]
struct OverheadGate {
    users: usize,
    /// Whether the <5% gate was asserted at this population (it is
    /// enforced at the sweep's largest population, where the fixed
    /// per-event cost amortizes over real controller work; smaller
    /// runs are reported for the curve).
    gate_enforced: bool,
    arrivals: usize,
    admissions: usize,
    measure_reps: usize,
    disabled_wall_ms: f64,
    enabled_wall_ms: f64,
    overhead_ms: f64,
    overhead_pct: f64,
    gate_relative_pct: f64,
    gate_abs_ms: f64,
    /// Decision streams and wall-stripped reports bit-identical with
    /// the recorder on vs off.
    decisions_identical: bool,
    /// Events recorded by the enabled run (including overwritten).
    events_recorded: u64,
    /// Events lost to bounded ring retention — nonzero by design at
    /// this population, proving retention stays bounded.
    events_dropped: u64,
    /// Counters, histogram quantiles and ring stats of the enabled
    /// run.
    telemetry: TelemetrySnapshot,
}

/// Serve a sweep with the recorder off and on; when `enforce` is set,
/// assert the wall-time delta stays inside the gate.
fn overhead_gate(users: usize, enforce: bool) -> OverheadGate {
    let profiles = tiers();
    let cfg = online_config();
    let trace = trace_for(users);

    // One warm scratch recorder for the timed reps: its rings are
    // first-touched by an untimed run, so the timed deltas measure
    // recording cost, not page faults on 2.5 MB of fresh ring memory.
    // Disabled and enabled reps interleave so slow drift in host load
    // hits both sides equally; the minimum over reps drops the noise.
    let scratch = FlightRecorder::new(fleet().sockets, RING_CAPACITY);
    serve_online_with(&cfg, &profiles, &trace, shards(), &scratch);

    let mut disabled_ms = f64::INFINITY;
    let mut enabled_ms = f64::INFINITY;
    let mut disabled_report = None;
    for _ in 0..MEASURE_REPS {
        let clock = Instant::now();
        let report = serve_online(&cfg, &profiles, &trace, shards());
        disabled_ms = disabled_ms.min(clock.elapsed().as_secs_f64() * 1e3);
        disabled_report = Some(report);
        let clock = Instant::now();
        serve_online_with(&cfg, &profiles, &trace, shards(), &scratch);
        enabled_ms = enabled_ms.min(clock.elapsed().as_secs_f64() * 1e3);
    }
    let disabled_report = disabled_report.expect("at least one disabled rep");

    // Canonical enabled run on a fresh recorder, untimed: exact
    // single-run counters and ring stats for the artifact.
    let rec = FlightRecorder::new(fleet().sockets, RING_CAPACITY);
    let enabled_report = serve_online_with(&cfg, &profiles, &trace, shards(), &rec);

    let decisions_identical = enabled_report.events == disabled_report.events
        && stripped(&enabled_report) == stripped(&disabled_report);
    assert!(
        decisions_identical,
        "attaching a flight recorder must not change a single decision"
    );
    let admits = rec.metrics().counter(CounterId::Admits);
    assert_eq!(
        admits as usize, enabled_report.admissions,
        "telemetry admit counter must agree with the report"
    );

    let overhead_ms = enabled_ms - disabled_ms;
    let overhead_pct = overhead_ms / disabled_ms.max(1e-9) * 100.0;
    println!(
        "overhead at {users} users: disabled {disabled_ms:.3} ms, enabled {enabled_ms:.3} ms \
         ({overhead_pct:+.2}%, {overhead_ms:+.3} ms), {} events recorded ({} dropped)",
        rec.recorded(),
        rec.dropped()
    );
    if enforce {
        assert!(
            overhead_pct <= GATE_RELATIVE * 100.0 || overhead_ms <= GATE_ABS_MS,
            "telemetry overhead {overhead_pct:.2}% ({overhead_ms:.3} ms) exceeds the gate \
             ({}% relative, {GATE_ABS_MS} ms absolute)",
            GATE_RELATIVE * 100.0
        );
    }

    OverheadGate {
        users,
        gate_enforced: enforce,
        arrivals: enabled_report.arrivals,
        admissions: enabled_report.admissions,
        measure_reps: MEASURE_REPS,
        disabled_wall_ms: disabled_ms,
        enabled_wall_ms: enabled_ms,
        overhead_ms,
        overhead_pct,
        gate_relative_pct: GATE_RELATIVE * 100.0,
        gate_abs_ms: GATE_ABS_MS,
        decisions_identical,
        events_recorded: rec.recorded(),
        events_dropped: rec.dropped(),
        telemetry: rec.snapshot(),
    }
}

/// A user that is either a real tile-encoding live workload or a
/// cost-only profile replay — the mixed population of the parity run.
enum Mixed {
    Live(LiveWorkload),
    Synthetic(VideoProfile),
}

impl Workload for Mixed {
    fn steady_demand(&self) -> Vec<f64> {
        match self {
            Mixed::Live(w) => w.steady_demand(),
            Mixed::Synthetic(p) => p.steady_demand(),
        }
    }
    fn demand_at(&self, slot: usize) -> Vec<f64> {
        match self {
            Mixed::Live(w) => w.demand_at(slot),
            Mixed::Synthetic(p) => p.demand_at(slot),
        }
    }
    fn content_class(&self) -> &str {
        match self {
            Mixed::Live(w) => w.content_class(),
            Mixed::Synthetic(p) => p.content_class(),
        }
    }
    fn steady(&self) -> bool {
        match self {
            Mixed::Live(w) => Workload::steady(w),
            Mixed::Synthetic(p) => Workload::steady(p),
        }
    }
    fn work_for(&self, slot: usize, thread: usize) -> Option<Box<dyn FnOnce() + Send + '_>> {
        match self {
            Mixed::Live(w) => w.work_for(slot, thread),
            Mixed::Synthetic(p) => p.work_for(slot, thread),
        }
    }
}

#[derive(Debug, Serialize)]
struct BackendParity {
    workloads: usize,
    live_workloads: usize,
    horizon_slots: usize,
    arrivals: usize,
    admissions: usize,
    /// Telemetry events retained by the sim run (== pool run).
    events: usize,
    slot_core_events: usize,
    /// Normalized event streams match between `SimBackend` and
    /// `ThreadPoolBackend` shards.
    streams_match: bool,
    /// Decision logs and modeled reports match too (the pre-existing
    /// invariant, restated here so the artifact is self-contained).
    decisions_match: bool,
}

/// Serve the mixed population on sim and pool shards, each with a
/// modeled-time recorder, and demand identical normalized streams.
/// Returns the sim recorder for export alongside the parity summary.
fn backend_parity() -> (BackendParity, FlightRecorder, f64) {
    let horizon = 96;
    let platform = Platform::new("observe duo", 2, 4, FrequencySet::xeon_e5_2667(), 10e-6);
    let power = PowerModel::default();
    let cfg = live_online_config(horizon);
    let slot_secs = 1.0 / cfg.fps;

    // One real encoder per class of synthetic tier: tile threads of
    // admitted live users run actual encodes on the pool backend, while
    // the sim backend serves the identical analytical accounting.
    let workloads = vec![
        Mixed::Live(live_workload("observe-live", BodyPart::Brain, "brain", 77)),
        Mixed::Synthetic(synthetic_profile(
            "observe-spine",
            "spine",
            2,
            slot_secs * 0.2,
        )),
        Mixed::Synthetic(synthetic_profile(
            "observe-cardiac",
            "cardiac",
            4,
            slot_secs * 0.2,
        )),
    ];
    let live_count = workloads
        .iter()
        .filter(|w| matches!(w, Mixed::Live(_)))
        .count();
    let trace = synthesize_trace(&TraceConfig {
        horizon_slots: horizon,
        arrivals_per_slot: 0.25,
        min_session_slots: 24,
        tail_alpha: 1.4,
        profiles: workloads.len(),
        seed: 2018,
    });

    let sim_shards: Vec<SimBackend> = (0..platform.sockets)
        .map(|s| SimBackend::new(platform.socket_view(s), power))
        .collect();
    let pool_shards: Vec<ThreadPoolBackend> = (0..platform.sockets)
        .map(|s| ThreadPoolBackend::with_workers(platform.socket_view(s), power, 2))
        .collect();

    // Modeled-time recorders: no wall stamps, so the streams are
    // byte-comparable across backends without normalization — but we
    // compare the normalized view anyway, which is what a wall-clocked
    // deployment would diff.
    let rec_sim = FlightRecorder::modeled(platform.sockets, RING_CAPACITY);
    let rec_pool = FlightRecorder::modeled(platform.sockets, RING_CAPACITY);
    let sim = serve_online_with(&cfg, &workloads, &trace, sim_shards, &rec_sim);
    let pool = serve_online_with(&cfg, &workloads, &trace, pool_shards, &rec_pool);

    let sim_events = rec_sim.normalized_events();
    let pool_events = rec_pool.normalized_events();
    let streams_match = sim_events == pool_events;
    let decisions_match = sim.events == pool.events
        && sim.windows == pool.windows
        && sim.window_misses == pool.window_misses;
    let slot_core_events = sim_events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SlotCore { .. }))
        .count();
    println!(
        "backend parity: {} events on sim, {} on pool ({} per-core spans); \
         streams match: {streams_match}, decisions match: {decisions_match}",
        sim_events.len(),
        pool_events.len(),
        slot_core_events
    );
    assert!(
        !sim_events.is_empty() && slot_core_events > 0,
        "parity run must record a non-trivial event stream"
    );
    assert!(
        streams_match,
        "thread-pool shards emitted a different telemetry stream than sim shards"
    );
    assert!(decisions_match, "backend decision streams diverged");
    assert_eq!(rec_sim.dropped(), 0, "parity rings must retain everything");

    let parity = BackendParity {
        workloads: workloads.len(),
        live_workloads: live_count,
        horizon_slots: horizon,
        arrivals: sim.arrivals,
        admissions: sim.admissions,
        events: sim_events.len(),
        slot_core_events,
        streams_match,
        decisions_match,
    };
    (parity, rec_sim, slot_secs)
}

#[derive(Debug, Serialize)]
struct ObserveArtifact {
    scale: String,
    platform: String,
    sockets: usize,
    cores_per_socket: usize,
    horizon_slots: usize,
    gop_slots: usize,
    /// One entry per population of the scale bench's quick tier; the
    /// gate is enforced at the largest.
    overhead: Vec<OverheadGate>,
    parity: BackendParity,
    trace_file: String,
    events_file: String,
}

/// The artifact directory the shared `write_artifact` helper uses.
fn out_dir() -> PathBuf {
    std::env::var("MEDVT_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/experiments"))
}

fn main() {
    let scale = Scale::from_env();
    let platform = fleet();
    println!(
        "observability bench on {} ({} sockets x {} cores), horizon {HORIZON} slots",
        platform.name,
        platform.sockets,
        platform.cores_per_socket()
    );

    // The scale bench's quick-tier populations; the telemetry overhead
    // gate is enforced at the largest, where per-boundary controller
    // work dominates and the fixed per-event cost must disappear into
    // it. The smaller run documents the worst case (short run, dense
    // events) without gating on host noise.
    let populations = [1_000usize, 10_000];
    let overhead: Vec<OverheadGate> = populations
        .iter()
        .map(|&users| overhead_gate(users, users == *populations.last().unwrap()))
        .collect();
    let (parity, rec, slot_secs) = backend_parity();

    // Exports: the parity run's stream is small, deterministic, and
    // carries real per-core spans — the right trace to eyeball.
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create artifact directory");
    let events = rec.events();
    let trace_path = dir.join("observe.trace.json");
    std::fs::write(&trace_path, chrome_trace(&events, slot_secs)).expect("write trace");
    let events_path = dir.join("observe_events.jsonl");
    std::fs::write(&events_path, json_lines(&events)).expect("write event log");
    println!(
        "trace: {} ({} events; load at ui.perfetto.dev)",
        trace_path.display(),
        events.len()
    );

    let artifact = ObserveArtifact {
        scale: format!("{scale:?}"),
        platform: platform.name.clone(),
        sockets: platform.sockets,
        cores_per_socket: platform.cores_per_socket(),
        horizon_slots: HORIZON,
        gop_slots: GOP_SLOTS,
        overhead,
        parity,
        trace_file: trace_path.display().to_string(),
        events_file: events_path.display().to_string(),
    };
    let path = write_artifact("observe_bench", &artifact);
    println!("artifact: {}", path.display());
}

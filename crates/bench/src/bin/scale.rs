//! Control-plane scalability sweep: Poisson arrival traces at 10³ to
//! 10⁶ users through the online admission controller on a 256-core
//! fleet (4 shards × 64 cores), on analytical `SimBackend` shards.
//!
//! What it measures (artifact `scale_bench.json`):
//!
//! * **decision throughput** — admission/eviction/departure decisions
//!   per second of controller wall time at each population, for the
//!   optimized controller and (up to 10⁵ users) the frozen
//!   pre-refactor linear baseline (`serve_online_reference`); each
//!   cost is the minimum over `MEASURE_REPS` repetitions of the
//!   deterministic run, so host scheduling noise cannot flip the
//!   speedup gate;
//! * **controller overhead per boundary** — queue-side and
//!   placement-side nanoseconds per GOP boundary;
//! * **decision-stream parity** — at 10³ users the optimized and
//!   reference controllers must produce bit-identical event streams
//!   and modeled reports (energy included);
//! * **placement microbenchmark** — from-scratch `place_threads_on`
//!   vs `IncrementalPlacer` steady-state refresh (a no-op) and
//!   single-user churn on one 64-core shard.
//!
//! `MEDVT_SCALE=quick` (default) sweeps 10³/10⁴; `full` adds 10⁵ and
//! 10⁶ and enforces the ≥10× decision-throughput gate at 10⁵.
//! Honours `MEDVT_OUT` like the other experiment binaries.

use medvt_admission::{
    serve_online, serve_online_reference, synthesize_trace, OnlineConfig, OnlineReport,
    ShardPolicy, TraceConfig, UserRequest, Workload,
};
use medvt_bench::{write_artifact, Scale};
use medvt_mpsoc::{DvfsPolicy, FrequencySet, Platform, PowerModel};
use medvt_runtime::{ControllerTiming, SimBackend};
use medvt_sched::{place_threads_on, IncrementalPlacer, UserDemand};
use serde::Serialize;
use std::time::Instant;

const HORIZON: usize = 192;
/// Short GOPs — the low-latency configuration of live diagnostics —
/// give the controller a 6 Hz decision cadence, which is exactly where
/// per-boundary control-plane cost matters.
const GOP_SLOTS: usize = 4;
const FPS: f64 = 24.0;
const HEADROOM: f64 = 1.15;
/// Reference controller cost is O(queue) per boundary — past this
/// population it only burns minutes to restate the same curve.
const REFERENCE_CEILING: usize = 100_000;
/// Every controller run is deterministic, so wall-time differences
/// between repetitions are pure host noise; the minimum over this many
/// repetitions is the noise-robust cost estimate (decision parity is
/// checked once — repeats cannot change it).
const MEASURE_REPS: usize = 3;

/// A slot-invariant tier: demand never changes, so the controller's
/// steady-state fast path (no re-estimation, no re-placement) applies.
struct SteadyTier {
    tiles: usize,
    secs: f64,
    class: &'static str,
}

impl Workload for SteadyTier {
    fn steady_demand(&self) -> Vec<f64> {
        vec![self.secs; self.tiles]
    }
    fn demand_at(&self, _slot: usize) -> Vec<f64> {
        vec![self.secs; self.tiles]
    }
    fn content_class(&self) -> &str {
        self.class
    }
    fn steady(&self) -> bool {
        true
    }
}

/// Three tiers at 1 / 2 / 4 effective cores per user after headroom
/// padding — mixed demands keep the admission path honest (fitting is
/// per-demand-class, so the controller must interleave classes in
/// arrival order).
fn tiers() -> Vec<SteadyTier> {
    let unit = (1.0 / FPS) / HEADROOM;
    vec![
        SteadyTier {
            tiles: 1,
            secs: unit,
            class: "brain",
        },
        SteadyTier {
            tiles: 2,
            secs: unit,
            class: "spine",
        },
        SteadyTier {
            tiles: 4,
            secs: unit,
            class: "cardiac",
        },
    ]
}

/// The 256-core serving fleet: 4 sockets × 64 homogeneous cores (wide
/// enough that placement takes the indexed argmin path).
fn fleet() -> Platform {
    Platform::new("scale fleet", 4, 64, FrequencySet::xeon_e5_2667(), 10e-6)
}

fn shards() -> Vec<SimBackend> {
    let p = fleet();
    (0..p.sockets)
        .map(|s| SimBackend::new(p.socket_view(s), PowerModel::default()))
        .collect()
}

fn online_config() -> OnlineConfig {
    OnlineConfig {
        fps: FPS,
        gop_slots: GOP_SLOTS,
        horizon_slots: HORIZON,
        headroom: HEADROOM,
        policy: DvfsPolicy::StretchToDeadline,
        shard_policy: ShardPolicy::LeastLoaded,
        evict_miss_windows: 1,
        cost: medvt_admission::CostPlan::unlimited(),
    }
}

fn trace_for(users: usize) -> Vec<UserRequest> {
    synthesize_trace(&TraceConfig {
        horizon_slots: HORIZON,
        arrivals_per_slot: users as f64 / HORIZON as f64,
        min_session_slots: 48,
        tail_alpha: 1.4,
        profiles: 3,
        seed: 2018,
    })
}

/// A report with its wall-clock controller costs dropped — what must
/// be bit-identical between the optimized and reference controllers.
fn stripped(report: &OnlineReport) -> OnlineReport {
    let mut r = report.clone();
    r.controller = ControllerTiming::default();
    r
}

#[derive(Debug, Serialize)]
struct ControllerCost {
    queue_ns: u64,
    placement_ns: u64,
    total_ns: u64,
    replans: u64,
    decisions: u64,
    boundaries: usize,
    decisions_per_sec: Option<f64>,
    ns_per_boundary: f64,
}

impl From<&ControllerTiming> for ControllerCost {
    fn from(t: &ControllerTiming) -> Self {
        ControllerCost {
            queue_ns: t.queue_ns,
            placement_ns: t.placement_ns,
            total_ns: t.total_ns(),
            replans: t.replans as u64,
            decisions: t.decisions,
            boundaries: t.boundaries,
            decisions_per_sec: t.decisions_per_sec(),
            ns_per_boundary: if t.boundaries == 0 {
                0.0
            } else {
                t.total_ns() as f64 / t.boundaries as f64
            },
        }
    }
}

#[derive(Debug, Serialize)]
struct TierSweep {
    users: usize,
    arrivals: usize,
    admissions: usize,
    departures: usize,
    abandoned: usize,
    rejected: usize,
    evictions: usize,
    peak_concurrent_users: usize,
    on_time_rate: f64,
    events: usize,
    run_wall_ms: f64,
    optimized: ControllerCost,
    /// Present when the pre-refactor baseline also ran at this
    /// population (≤ 10⁵ users).
    reference: Option<ControllerCost>,
    /// reference total controller ns / optimized total controller ns.
    speedup: Option<f64>,
    /// Decision streams and modeled reports bit-identical (checked at
    /// every population where the reference ran).
    decisions_match_reference: Option<bool>,
}

#[derive(Debug, Serialize)]
struct PlacementMicrobench {
    cores: usize,
    users: usize,
    reps: usize,
    from_scratch_ns_per_replan: f64,
    steady_refresh_ns: f64,
    single_user_churn_ns: f64,
}

#[derive(Debug, Serialize)]
struct ScaleArtifact {
    scale: String,
    platform: String,
    sockets: usize,
    cores_per_socket: usize,
    horizon_slots: usize,
    gop_slots: usize,
    /// Controller costs are the minimum over this many repetitions of
    /// each (deterministic) run — host-noise robust.
    measure_reps: usize,
    sweeps: Vec<TierSweep>,
    placement: PlacementMicrobench,
}

/// Run a deterministic controller `MEASURE_REPS` times and keep the
/// repetition with the lowest measured controller cost.
fn best_of(mut run: impl FnMut() -> OnlineReport) -> OnlineReport {
    let mut best = run();
    for _ in 1..MEASURE_REPS {
        let next = run();
        if next.controller.total_ns() < best.controller.total_ns() {
            best = next;
        }
    }
    best
}

fn sweep(users: usize, run_reference: bool) -> TierSweep {
    let profiles = tiers();
    let cfg = online_config();
    let trace = trace_for(users);

    let clock = Instant::now();
    let fast = best_of(|| serve_online(&cfg, &profiles, &trace, shards()));
    let run_wall_ms = clock.elapsed().as_secs_f64() * 1e3 / MEASURE_REPS as f64;

    let (reference, speedup, decisions_match) = if run_reference {
        let slow = best_of(|| serve_online_reference(&cfg, &profiles, &trace, shards()));
        let matches = fast.events == slow.events && stripped(&fast) == stripped(&slow);
        assert!(
            matches,
            "optimized controller diverged from the reference at {users} users"
        );
        let speedup = slow.controller.total_ns() as f64 / fast.controller.total_ns().max(1) as f64;
        (
            Some(ControllerCost::from(&slow.controller)),
            Some(speedup),
            Some(matches),
        )
    } else {
        (None, None, None)
    };

    let optimized = ControllerCost::from(&fast.controller);
    println!(
        "{users:>9} users: {:>9} arrivals, {:>5} admitted, peak {:>4} concurrent, \
         controller {:>9.3} ms ({:.2e} decisions/s){}",
        fast.arrivals,
        fast.admissions,
        fast.peak_concurrent_users,
        optimized.total_ns as f64 / 1e6,
        optimized.decisions_per_sec.unwrap_or(0.0),
        match speedup {
            Some(s) => format!(", {s:.1}x over reference"),
            None => String::new(),
        }
    );
    assert!(fast.admissions > 0, "sweep must admit users");

    TierSweep {
        users,
        arrivals: fast.arrivals,
        admissions: fast.admissions,
        departures: fast.departures,
        abandoned: fast.abandoned,
        rejected: fast.rejected,
        evictions: fast.evictions,
        peak_concurrent_users: fast.peak_concurrent_users,
        on_time_rate: fast.on_time_rate(),
        events: fast.events.len(),
        run_wall_ms,
        optimized,
        reference,
        speedup,
        decisions_match_reference: decisions_match,
    }
}

/// From-scratch replanning vs incremental refresh on one 64-core
/// shard with 48 four-tile users.
fn placement_microbench() -> PlacementMicrobench {
    let speeds = vec![1.0f64; 64];
    let slot = 1.0 / FPS;
    let users: Vec<UserDemand> = (0..48)
        .map(|u| UserDemand::new(u, vec![slot * 0.2 + u as f64 * 1e-6; 4]))
        .collect();
    let reps = 200usize;

    let clock = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(place_threads_on(&speeds, slot, &users));
    }
    let from_scratch = clock.elapsed().as_nanos() as f64 / reps as f64;

    let mut placer = IncrementalPlacer::new(&speeds, slot);
    for u in &users {
        placer.set_user(u.clone());
    }
    assert!(placer.refresh(), "initial refresh places everyone");
    let clock = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(placer.refresh());
    }
    let steady = clock.elapsed().as_nanos() as f64 / reps as f64;

    let clock = Instant::now();
    for i in 0..reps {
        let user = i % users.len();
        placer.remove_user(user);
        placer.refresh();
        placer.set_user(users[user].clone());
        placer.refresh();
    }
    let churn = clock.elapsed().as_nanos() as f64 / reps as f64;

    println!(
        "placement on 64 cores / 48 users: from-scratch {from_scratch:.0} ns, \
         steady refresh {steady:.0} ns, single-user churn {churn:.0} ns"
    );
    assert!(
        steady < from_scratch,
        "a steady-state refresh must be cheaper than a from-scratch replan"
    );
    PlacementMicrobench {
        cores: speeds.len(),
        users: users.len(),
        reps,
        from_scratch_ns_per_replan: from_scratch,
        steady_refresh_ns: steady,
        single_user_churn_ns: churn,
    }
}

fn main() {
    let scale = Scale::from_env();
    let populations: &[usize] = match scale {
        Scale::Quick => &[1_000, 10_000],
        Scale::Full => &[1_000, 10_000, 100_000, 1_000_000],
    };
    let platform = fleet();
    println!(
        "scale sweep on {} ({} sockets x {} cores), horizon {HORIZON} slots",
        platform.name,
        platform.sockets,
        platform.cores_per_socket()
    );

    let placement = placement_microbench();
    let mut sweeps = Vec::new();
    for &users in populations {
        sweeps.push(sweep(users, users <= REFERENCE_CEILING));
    }

    if scale == Scale::Full {
        let at_1e5 = sweeps
            .iter()
            .find(|s| s.users == 100_000)
            .expect("full sweep covers 1e5");
        let speedup = at_1e5.speedup.expect("reference ran at 1e5");
        assert!(
            speedup >= 10.0,
            "decision throughput at 1e5 users must be >=10x the reference, got {speedup:.1}x"
        );
        assert!(
            sweeps.iter().any(|s| s.users == 1_000_000),
            "the 1M-user sweep must complete"
        );
    }

    let artifact = ScaleArtifact {
        scale: format!("{scale:?}"),
        platform: platform.name.clone(),
        sockets: platform.sockets,
        cores_per_socket: platform.cores_per_socket(),
        horizon_slots: HORIZON,
        gop_slots: GOP_SLOTS,
        measure_reps: MEASURE_REPS,
        sweeps,
        placement,
    };
    let path = write_artifact("scale_bench", &artifact);
    println!("artifact: {}", path.display());
}

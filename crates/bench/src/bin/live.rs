//! Live multi-user transcoding experiment: N per-user tile encoders —
//! real `medvt-encoder` work, not cost replay — feeding per-socket
//! `ThreadPoolBackend` shards through the online admission loop, with
//! every placement decision still taken by the analytical model.
//!
//! This is the validation step performance-modeling work (Li et al.'s
//! heterogeneous cloud transcoding) treats as central: run the real
//! system next to its model and compare. For every scenario the binary
//! records the **measured** wall time spent executing tile encodes per
//! deadline window against the **modeled** window makespan (per-slot
//! busiest-core planned time under `RaceToIdle`), and their ratio. The
//! ratio's absolute value reflects the host-CPU-vs-reference-platform
//! speed gap; what validates the model is that it stays finite,
//! positive and stable across windows and scenarios.
//!
//! Sweeps users × workers-per-shard on both platform presets
//! (`xeon_e5_2667_quad`, `big_little`) and asserts, per scenario, that
//! the thread-pool shards replay the *identical* admission/eviction
//! event stream as analytical shards — live execution must not perturb
//! a single decision.
//!
//! Artifact: `live_bench.json` (under `MEDVT_OUT`, default
//! `target/experiments`). `MEDVT_SCALE=full` enlarges the sweep.

use medvt_admission::{serve_online, DeadlineClass, UserRequest};
use medvt_bench::{
    live_online_config, live_workload, suggested_host_speed_factor, write_artifact, Scale,
};
use medvt_frame::synth::BodyPart;
use medvt_mpsoc::{Platform, PowerModel};
use medvt_runtime::{SimBackend, ThreadPoolBackend, WindowTiming};
use serde::Serialize;

const HORIZON: usize = 48;
const GOP_SLOTS: usize = 8;

fn trace_for(users: usize, workloads: usize) -> Vec<UserRequest> {
    (0..users)
        .map(|u| UserRequest {
            user: u,
            arrival_slot: 0,
            profile: u % workloads,
            class: DeadlineClass::Standard,
            departure_slot: None,
        })
        .collect()
}

#[derive(Debug, Serialize)]
struct WindowRow {
    shard: usize,
    end_slot: usize,
    measured_secs: f64,
    modeled_secs: f64,
    ratio: Option<f64>,
}

#[derive(Debug, Serialize)]
struct LiveScenario {
    platform: String,
    sockets: usize,
    users: usize,
    workers_per_shard: usize,
    admissions: usize,
    evictions: usize,
    on_time_rate: f64,
    /// Thread-pool shards replayed the analytical admit/evict stream
    /// bit for bit (asserted; recorded for the artifact reader).
    decisions_match_sim: bool,
    /// Wall seconds spent executing real tile encodes, summed over
    /// every shard's deadline windows.
    measured_window_secs: f64,
    /// The analytical model's window makespan for the same work.
    modeled_window_secs: f64,
    /// measured / modeled — the host-vs-model speed factor.
    measured_over_modeled: Option<f64>,
    windows: Vec<WindowRow>,
}

#[derive(Debug, Serialize)]
struct LiveArtifact {
    scale: String,
    horizon_slots: usize,
    gop_slots: usize,
    workload_names: Vec<String>,
    scenarios: Vec<LiveScenario>,
    /// min/max of measured_over_modeled across scenarios that ran
    /// real work — the stability band of the model validation.
    ratio_min: Option<f64>,
    ratio_max: Option<f64>,
    /// Geometric mean of the scenario ratios: the `rho` to feed
    /// `CostModel::with_host_speed_factor` so the model predicts this
    /// host's wall time (see README § "Calibrating the cost model to a
    /// host").
    suggested_host_speed_factor: Option<f64>,
}

fn window_rows(shards: &[(usize, &[WindowTiming])]) -> Vec<WindowRow> {
    let mut rows = Vec::new();
    for (shard, times) in shards {
        for w in *times {
            rows.push(WindowRow {
                shard: *shard,
                end_slot: w.end_slot,
                measured_secs: w.wall_secs,
                modeled_secs: w.modeled_secs,
                ratio: w.ratio(),
            });
        }
    }
    rows
}

fn main() {
    let scale = Scale::from_env();
    let (user_sweep, worker_sweep): (Vec<usize>, Vec<usize>) = match scale {
        Scale::Quick => (vec![2, 4, 8], vec![1, 2, 4]),
        Scale::Full => (vec![4, 8, 16], vec![1, 2, 4, 8]),
    };
    let power = PowerModel::default();
    let online = live_online_config(HORIZON);
    let workloads = vec![
        live_workload("brain-pan", BodyPart::Brain, "brain", 11),
        live_workload("cardiac-pan", BodyPart::Cardiac, "cardiac", 23),
    ];
    println!(
        "live workloads: {:?} ({} frames each)",
        workloads
            .iter()
            .map(|w| w.profile().name.clone())
            .collect::<Vec<_>>(),
        workloads[0].frame_count()
    );

    let mut scenarios = Vec::new();
    for platform in [Platform::xeon_e5_2667_quad(), Platform::big_little()] {
        for &users in &user_sweep {
            let trace = trace_for(users, workloads.len());
            // The reference decision stream: analytical shards, no
            // physical execution.
            let sim_shards: Vec<SimBackend> = (0..platform.sockets)
                .map(|s| SimBackend::new(platform.socket_view(s), power))
                .collect();
            let reference = serve_online(&online, &workloads, &trace, sim_shards);
            for &workers in &worker_sweep {
                let pool_shards: Vec<ThreadPoolBackend> = (0..platform.sockets)
                    .map(|s| {
                        ThreadPoolBackend::with_workers(platform.socket_view(s), power, workers)
                    })
                    .collect();
                let report = serve_online(&online, &workloads, &trace, pool_shards);
                let decisions_match = report.events == reference.events
                    && report.windows == reference.windows
                    && report.window_misses == reference.window_misses;
                assert!(
                    decisions_match,
                    "{}: live execution perturbed the decision stream \
                     (users {users}, workers {workers})",
                    platform.name
                );
                let measured = report.measured_window_secs();
                let modeled = report.modeled_window_secs();
                let ratio = report.window_time_ratio();
                println!(
                    "{:<28} users {:>2}  workers {:>2}  admitted {:>2}  \
                     measured {:>8.4}s  modeled {:>8.4}s  ratio {}",
                    platform.name,
                    users,
                    workers,
                    report.admissions,
                    measured,
                    modeled,
                    ratio.map_or("n/a".into(), |r| format!("{r:.3}")),
                );
                let shard_windows: Vec<(usize, &[WindowTiming])> = report
                    .shards
                    .iter()
                    .map(|s| (s.shard, s.window_times.as_slice()))
                    .collect();
                scenarios.push(LiveScenario {
                    platform: platform.name.clone(),
                    sockets: platform.sockets,
                    users,
                    workers_per_shard: workers,
                    admissions: report.admissions,
                    evictions: report.evictions,
                    on_time_rate: report.on_time_rate(),
                    decisions_match_sim: decisions_match,
                    measured_window_secs: measured,
                    modeled_window_secs: modeled,
                    measured_over_modeled: ratio,
                    windows: window_rows(&shard_windows),
                });
            }
        }
    }

    let ratios: Vec<f64> = scenarios
        .iter()
        .filter_map(|s| s.measured_over_modeled)
        .collect();
    let ratio_min = ratios.iter().copied().reduce(f64::min);
    let ratio_max = ratios.iter().copied().reduce(f64::max);
    assert!(
        !ratios.is_empty(),
        "at least one scenario must execute real work"
    );
    if let (Some(lo), Some(hi)) = (ratio_min, ratio_max) {
        println!("measured/modeled ratio band across scenarios: [{lo:.3}, {hi:.3}]");
        assert!(
            lo.is_finite() && lo > 0.0 && hi.is_finite(),
            "ratios must stay finite and positive"
        );
    }
    let suggested = suggested_host_speed_factor(&ratios);
    if let Some(rho) = suggested {
        println!(
            "suggested host speed factor (rho for \
             CostModel::with_host_speed_factor): {rho:.4}"
        );
    }

    let artifact = LiveArtifact {
        scale: format!("{scale:?}"),
        horizon_slots: HORIZON,
        gop_slots: GOP_SLOTS,
        workload_names: workloads.iter().map(|w| w.profile().name.clone()).collect(),
        scenarios,
        ratio_min,
        ratio_max,
        suggested_host_speed_factor: suggested,
    };
    let path = write_artifact("live_bench", &artifact);
    println!("artifact: {}", path.display());
}

//! Regenerates **Table I**: speedup, PSNR loss and compression
//! (bitrate) loss of the proposed motion-estimation policy and of
//! hexagon-based search, both relative to TZ search, across the
//! paper's eleven uniform tilings.
//!
//! Speedup is measured as the ratio of motion-search sample operations
//! (the complexity measure of the search algorithms); PSNR/bitrate come
//! from the real encode.
//!
//! Run: `cargo run --release -p medvt-bench --bin table1`
//! (`MEDVT_SCALE=full` for paper geometry).

use medvt_bench::{write_artifact, Scale};
use medvt_core::{MePolicy, UniformMeController};
use medvt_encoder::{CostModel, EncoderConfig, Qp, SearchSpec, SequenceStats, VideoEncoder};
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt_frame::VideoClip;
use medvt_motion::HexOrientation;
use serde::Serialize;

const TILINGS: [(usize, usize); 11] = [
    (1, 1),
    (2, 1),
    (2, 2),
    (2, 3),
    (2, 4),
    (5, 2),
    (4, 3),
    (5, 3),
    (5, 4),
    (4, 6),
    (5, 6),
];

#[derive(Debug, Serialize)]
struct MethodRow {
    method: String,
    /// Whole-encoder speedup from the cycle model (the paper's metric).
    speedup: Vec<f64>,
    /// Pure ME complexity reduction (distinct candidates evaluated).
    me_speedup: Vec<f64>,
    psnr_loss_db: Vec<f64>,
    bitrate_loss_pct: Vec<f64>,
}

/// Total modelled encode cycles of a sequence.
fn total_cycles(stats: &SequenceStats) -> u64 {
    let model = CostModel::default();
    stats
        .frames
        .iter()
        .flat_map(|f| f.tiles.iter())
        .map(|t| model.tile_cycles(t))
        .sum()
}

#[derive(Debug, Serialize)]
struct Table1 {
    tilings: Vec<String>,
    rows: Vec<MethodRow>,
}

fn encode(clip: &VideoClip, cols: usize, rows: usize, policy: MePolicy) -> SequenceStats {
    let mut ctl = UniformMeController::new(cols, rows, Qp::new(32).expect("valid"), policy);
    VideoEncoder::new(EncoderConfig::default())
        .parallel(true)
        .encode_clip(clip, &mut ctl)
}

fn main() {
    let scale = Scale::from_env();
    // The paper uses one 400-frame medical video for this table; the
    // brain-pan phantom exercises both low-motion borders and a
    // high-motion center.
    let clip = PhantomVideo::builder(BodyPart::Brain)
        .resolution(scale.resolution())
        .motion(MotionPattern::Pan { dx: 1.2, dy: 0.4 })
        .seed(77)
        .build()
        .capture(scale.me_frames());

    println!("Table I — ME speedup / PSNR loss / bitrate loss vs TZ search");
    println!(
        "(phantom video, {} frames @ {})\n",
        clip.len(),
        scale.resolution()
    );

    let mut table = Table1 {
        tilings: TILINGS.iter().map(|(c, r)| format!("{c}x{r}")).collect(),
        rows: vec![
            MethodRow {
                method: "Proposed".into(),
                speedup: vec![],
                me_speedup: vec![],
                psnr_loss_db: vec![],
                bitrate_loss_pct: vec![],
            },
            MethodRow {
                method: "Hexagonal [15]".into(),
                speedup: vec![],
                me_speedup: vec![],
                psnr_loss_db: vec![],
                bitrate_loss_pct: vec![],
            },
        ],
    };

    for &(cols, rows) in &TILINGS {
        let tz = encode(&clip, cols, rows, MePolicy::Fixed(SearchSpec::Tz));
        let hex = encode(
            &clip,
            cols,
            rows,
            MePolicy::Fixed(SearchSpec::Hexagon(HexOrientation::Horizontal)),
        );
        let proposed = encode(&clip, cols, rows, MePolicy::Proposed);
        let tz_samples = tz.total_sad_samples().max(1) as f64;
        let tz_cycles = total_cycles(&tz).max(1) as f64;
        let (first, rest) = table.rows.split_at_mut(1);
        for (row, stats) in [(&mut first[0], &proposed), (&mut rest[0], &hex)] {
            row.speedup
                .push(tz_cycles / total_cycles(stats).max(1) as f64);
            row.me_speedup
                .push(tz_samples / stats.total_sad_samples().max(1) as f64);
            row.psnr_loss_db.push(tz.mean_psnr() - stats.mean_psnr());
            row.bitrate_loss_pct.push(
                (stats.total_bits() as f64 - tz.total_bits() as f64) / tz.total_bits() as f64
                    * 100.0,
            );
        }
        eprintln!("  …{cols}x{rows} done");
    }

    // Print in the paper's layout.
    let header: Vec<String> = std::iter::once("            ".to_string())
        .chain(table.tilings.iter().map(|t| format!("{t:>6}")))
        .collect();
    println!("{}", header.join(" "));
    for row in &table.rows {
        println!("{}:", row.method);
        let fmt = |v: &[f64], p: usize| {
            v.iter()
                .map(|x| format!("{x:>6.p$}", p = p))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!("  Speedup (x)      {}", fmt(&row.speedup, 1));
        println!("  ME speedup (x)   {}", fmt(&row.me_speedup, 1));
        println!("  PSNR loss (dB)   {}", fmt(&row.psnr_loss_db, 2));
        println!("  Bitrate loss (%) {}", fmt(&row.bitrate_loss_pct, 1));
    }

    let path = write_artifact("table1", &table);
    println!("\nartifact: {}", path.display());

    // Shape checks mirroring the paper's trends.
    let p = &table.rows[0];
    let h = &table.rows[1];
    let p_last = *p.speedup.last().expect("rows filled");
    let p_first = p.speedup[0];
    println!(
        "\nshape: proposed speedup grows {:.1}x → {:.1}x across tilings",
        p_first, p_last
    );
    let wins = p
        .speedup
        .iter()
        .zip(&h.speedup)
        .filter(|(a, b)| a >= b)
        .count();
    println!("shape: proposed ≥ hexagonal speedup in {wins}/11 tilings");
    let max_loss = p.psnr_loss_db.iter().cloned().fold(0.0, f64::max);
    println!("shape: max proposed PSNR loss {max_loss:.2} dB (paper ≤ 0.31)");
}

//! Regenerates **Fig. 3**: the tile structure and per-tile CPU time of
//! one representative frame under (a) the baseline \[19\] and (b) the
//! proposed content-aware approach, plus the resulting core/frequency
//! usage.
//!
//! Run: `cargo run --release -p medvt-bench --bin fig3`

use medvt_bench::{baseline_config, pipeline_config, write_artifact, Scale};
use medvt_core::{profile_video, Baseline19Controller, ContentAwareController, VideoProfile};
use medvt_encoder::EncoderConfig;
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt_mpsoc::{plan_core, DvfsPolicy, Platform};
use medvt_sched::{allocate, baseline_allocate, Allocation, UserDemand};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig3Side {
    label: String,
    tiles: Vec<(String, f64)>,
    cores_used: usize,
    cores_at_fmax: usize,
}

fn analyze_side(label: &str, profile: &VideoProfile, frame_idx: usize, baseline: bool) -> Fig3Side {
    let platform = Platform::xeon_e5_2667_quad();
    let slot = 1.0 / 24.0;
    let frame = &profile.frames[frame_idx.min(profile.frames.len() - 1)];
    let demand: Vec<f64> = frame.tiles.iter().map(|t| t.fmax_secs).collect();
    let user = [UserDemand::new(0, demand)];
    // [19]: one tile per core, rail frequencies. Proposed: Algorithm 2
    // packing + lowest-sufficient frequency.
    let (alloc, policy): (Allocation, DvfsPolicy) = if baseline {
        (
            baseline_allocate(platform.total_cores(), &user),
            DvfsPolicy::PinnedMax,
        )
    } else {
        (
            allocate(platform.total_cores(), slot, &user),
            DvfsPolicy::StretchToDeadline,
        )
    };
    let mut cores_at_fmax = 0;
    for &load in alloc.core_loads.iter().filter(|&&l| l > 0.0) {
        let plan = plan_core(&platform, policy, load, slot, platform.fmin());
        if plan.freq == platform.fmax() {
            cores_at_fmax += 1;
        }
    }
    Fig3Side {
        label: label.to_string(),
        tiles: frame
            .tiles
            .iter()
            .map(|t| (t.rect.to_string(), t.fmax_secs))
            .collect(),
        cores_used: alloc.used_cores(),
        cores_at_fmax,
    }
}

fn main() {
    let scale = Scale::from_env();
    // A representative diagnostic video: textured center, panning view.
    let clip = PhantomVideo::builder(BodyPart::LungChest)
        .resolution(scale.resolution())
        .motion(MotionPattern::Pan { dx: 1.0, dy: 0.3 })
        .seed(42)
        .build()
        .capture(scale.frames().min(17));

    eprintln!("profiling proposed…");
    let mut prop_ctl =
        ContentAwareController::new(pipeline_config(scale), medvt_sched::WorkloadLut::new());
    let prop = profile_video(
        "fig3",
        "lung_chest",
        &clip,
        &mut prop_ctl,
        &EncoderConfig::default(),
        false,
    );
    eprintln!("profiling baseline [19]…");
    let mut base_ctl = Baseline19Controller::new(baseline_config(scale));
    base_ctl.set_rails_pinned(true);
    let base = profile_video(
        "fig3",
        "lung_chest",
        &clip,
        &mut base_ctl,
        &EncoderConfig::default(),
        false,
    );

    // A steady mid-GOP frame (poc 12), as in the paper's snapshot.
    let frame_idx = 12;
    let a = analyze_side("(a) work [19]", &base, frame_idx, true);
    let b = analyze_side("(b) proposed", &prop, frame_idx, false);

    println!("Fig. 3 — tile structure and per-tile CPU time (s), frame #{frame_idx}\n");
    for side in [&a, &b] {
        println!("{}:", side.label);
        for (rect, secs) in &side.tiles {
            println!("  {:<18} {:>8.4} s", rect, secs);
        }
        let total: f64 = side.tiles.iter().map(|(_, s)| s).sum();
        println!(
            "  => {} tiles, Σ {:.4} s, {} cores used, {} at fmax\n",
            side.tiles.len(),
            total,
            side.cores_used,
            side.cores_at_fmax
        );
    }

    let total_a: f64 = a.tiles.iter().map(|(_, s)| s).sum();
    let total_b: f64 = b.tiles.iter().map(|(_, s)| s).sum();
    println!(
        "shape: proposed has more tiles ({} vs {}) with more diverse, smaller times",
        b.tiles.len(),
        a.tiles.len()
    );
    println!(
        "shape: Σ {:.4} vs {:.4} s — paper: 0.0765 vs 0.159 (proposed cheaper)",
        total_b, total_a
    );
    println!(
        "shape: cores {} vs {} (paper: 3 vs 5), at fmax {} vs {} (paper: 2 vs 5)",
        b.cores_used, a.cores_used, b.cores_at_fmax, a.cores_at_fmax
    );

    let path = write_artifact("fig3", &(a, b));
    println!("artifact: {}", path.display());
}

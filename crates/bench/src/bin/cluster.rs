//! Cluster-serving experiment: one live stream split into GOP-aligned
//! segments and leased across a heterogeneous coordinator/worker
//! fleet, sweeping node counts and then injecting a worker death.
//!
//! Per node count the binary reports end-to-end throughput
//! (slots/sec and segments/sec of reassembled output) and per-node
//! delivery shares; the fault run additionally reports lease-recovery
//! latency — the time from a dead node's lease expiring to the
//! re-queued segment's bytes being accepted from a survivor. Every
//! run's bitstream is checked byte-identical against the
//! direct-encode reference, so the sweep doubles as a determinism
//! audit of the reassembly path.
//!
//! Artifact: `cluster_bench.json` (under `MEDVT_OUT`, default
//! `target/experiments`). `MEDVT_SCALE=full` enlarges the sweep.

use medvt_admission::Workload;
use medvt_bench::{live_workload, write_artifact, Scale};
use medvt_cluster::{mixed_fleet, run_cluster, ClusterConfig};
use medvt_core::LiveWorkload;
use medvt_frame::synth::BodyPart;
use serde::Serialize;
use std::time::Duration;

const TOTAL_SLOTS: usize = 96;

#[derive(Debug, Serialize)]
struct NodeRow {
    node: usize,
    capacity_cores: f64,
    segments: usize,
    tiles: usize,
    energy_j: f64,
    declared_dead: bool,
}

#[derive(Debug, Serialize)]
struct ClusterScenario {
    nodes: usize,
    /// `Some(node)` when that worker was killed mid-run.
    killed_node: Option<usize>,
    segments: usize,
    leases_granted: usize,
    leases_expired: usize,
    leases_requeued: usize,
    duplicates: usize,
    bitstream_bytes: usize,
    /// Reassembled output byte-identical to the single-node reference
    /// (asserted; recorded for the artifact reader).
    bit_identical: bool,
    wall_secs: f64,
    slots_per_sec: f64,
    segments_per_sec: f64,
    /// Per recovered segment: first lease expiry → acceptance, secs.
    recovery_latency_secs: Vec<f64>,
    node_stats: Vec<NodeRow>,
}

#[derive(Debug, Serialize)]
struct ClusterArtifact {
    scale: String,
    total_slots: usize,
    gop_slots: usize,
    gops_per_segment: usize,
    lease_timeout_secs: f64,
    max_attempts: usize,
    scenarios: Vec<ClusterScenario>,
}

/// The deterministic reference bitstream: every profiled tile encoded
/// directly, slots in display order, tiles in tile order — what any
/// correct reassembly must reproduce byte for byte.
fn reference_bitstream(workload: &LiveWorkload, total_slots: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    for slot in 0..total_slots {
        for thread in 0..workload.demand_at(slot).len() {
            bytes.extend(
                workload
                    .encode_direct(slot, thread)
                    .expect("profiled tile encodes")
                    .bytes,
            );
        }
    }
    bytes
}

fn scenario(
    cfg: &ClusterConfig,
    workload: &LiveWorkload,
    reference: &[u8],
    killed_node: Option<usize>,
) -> ClusterScenario {
    let outcome = run_cluster(cfg, workload).expect("fleet completes the stream");
    let bit_identical = outcome.bitstream == reference;
    assert!(
        bit_identical,
        "{}-node reassembly diverged from the reference bitstream",
        cfg.nodes.len()
    );
    println!(
        "nodes {:>2}{}  segments {:>2}  granted {:>2}  expired {:>2}  \
         wall {:>6.3}s  {:>8.1} slots/s  recoveries {}",
        cfg.nodes.len(),
        killed_node.map_or("    ".into(), |n| format!(" (x{n})")),
        outcome.segments,
        outcome.leases_granted,
        outcome.leases_expired,
        outcome.wall_secs,
        cfg.total_slots as f64 / outcome.wall_secs,
        outcome.recoveries.len(),
    );
    ClusterScenario {
        nodes: cfg.nodes.len(),
        killed_node,
        segments: outcome.segments,
        leases_granted: outcome.leases_granted,
        leases_expired: outcome.leases_expired,
        leases_requeued: outcome.leases_requeued,
        duplicates: outcome.duplicates,
        bitstream_bytes: outcome.bitstream.len(),
        bit_identical,
        wall_secs: outcome.wall_secs,
        slots_per_sec: cfg.total_slots as f64 / outcome.wall_secs,
        segments_per_sec: outcome.segments as f64 / outcome.wall_secs,
        recovery_latency_secs: outcome.recoveries.iter().map(|r| r.latency_secs).collect(),
        node_stats: outcome
            .nodes
            .iter()
            .map(|n| NodeRow {
                node: n.node,
                capacity_cores: n.capacity_cores,
                segments: n.segments,
                tiles: n.tiles,
                energy_j: n.energy_j,
                declared_dead: n.declared_dead,
            })
            .collect(),
    }
}

fn main() {
    let scale = Scale::from_env();
    let node_sweep: Vec<usize> = match scale {
        Scale::Quick => vec![1, 2],
        Scale::Full => vec![1, 2, 3, 4],
    };
    let workload = live_workload("cluster-bench", BodyPart::Brain, "brain", 11);
    let reference = reference_bitstream(&workload, TOTAL_SLOTS);
    println!(
        "cluster stream: {} slots, {} reference bytes",
        TOTAL_SLOTS,
        reference.len()
    );

    let base = ClusterConfig::new(mixed_fleet(1), TOTAL_SLOTS);
    let mut scenarios = Vec::new();

    // Healthy sweep: throughput vs node count.
    for &n in &node_sweep {
        let cfg = ClusterConfig::new(mixed_fleet(n), TOTAL_SLOTS);
        scenarios.push(scenario(&cfg, &workload, &reference, None));
    }

    // Fault run: kill one worker after its first delivery and measure
    // recovery. Two nodes so exactly one survivor reclaims the work.
    let mut nodes = mixed_fleet(2);
    nodes[1].kill_after_segments = Some(1);
    let mut fault_cfg = ClusterConfig::new(nodes, TOTAL_SLOTS);
    fault_cfg.lease_timeout = Duration::from_millis(1500);
    fault_cfg.lease_backoff = Duration::from_millis(5);
    let fault = scenario(&fault_cfg, &workload, &reference, Some(1));
    assert!(
        fault.leases_expired > 0 && !fault.recovery_latency_secs.is_empty(),
        "the fault run must exercise lease recovery"
    );
    scenarios.push(fault);

    let artifact = ClusterArtifact {
        scale: format!("{scale:?}"),
        total_slots: TOTAL_SLOTS,
        gop_slots: base.gop_slots,
        gops_per_segment: base.gops_per_segment,
        lease_timeout_secs: base.lease_timeout.as_secs_f64(),
        max_attempts: base.max_attempts,
        scenarios,
    };
    let path = write_artifact("cluster_bench", &artifact);
    println!("artifact: {}", path.display());
}

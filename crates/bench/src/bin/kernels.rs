//! Kernel performance trajectory: measured before/after of the encode
//! hot-path optimizations.
//!
//! The `legacy` module replicates the pre-optimization kernels
//! verbatim — per-sample clamped SAD for every candidate, a
//! `HashMap<MotionVector, u64>` candidate memo, a `Mutex<HashMap>`
//! DCT basis cache and fresh `Vec` allocations per block — so each
//! release of this repo carries a measured comparison against the
//! same baseline instead of trusting a number in a README.
//!
//! Emits `kernels_bench.json` (under `MEDVT_OUT`, default
//! `target/experiments`) with:
//!
//! * candidate-evaluation throughput per search window and metric,
//!   legacy vs fast path (exhaustive sweep, exact costs);
//! * full-search throughput with the early-termination running-best
//!   path (decision-identical, far fewer samples per candidate);
//! * transform+quant round-trip blocks/s per size, allocating vs
//!   scratch-reuse `_into` kernels;
//! * full-tile encode wall time, legacy loop vs current loop.
//!
//! Usage: `cargo run --release -p medvt-bench --bin kernels`.

use medvt_bench::write_artifact;
use medvt_encoder::{encode_tile, EncoderConfig, Qp, SearchSpec, TileConfig};
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt_frame::Resolution;
use medvt_frame::{Frame, FrameKind, Plane, Rect};
use medvt_motion::{cost, CostMetric, MotionVector, SearchWindow};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// Median seconds of `runs` timed executions (after one warmup).
fn measure(runs: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The pre-optimization kernels, replicated verbatim from the seed
/// sources so the "before" column stays measurable after the
/// optimized code replaced them.
mod legacy {
    use medvt_encoder::bits::{code_block, se_len, BitWriter};
    use medvt_encoder::quant::{dequantize, quantize};
    use medvt_encoder::{IntraRefs, Qp};
    use medvt_frame::{Frame, Plane, Rect};
    use medvt_motion::MotionVector;
    use std::cell::{Cell, RefCell};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    /// Seed `cost::sad`: per-sample clamped access for every candidate.
    pub fn sad(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector) -> u64 {
        let mut acc = 0u64;
        for row in block.y..block.bottom() {
            let cur_row = &cur.row(row)[block.x..block.right()];
            let ref_y = row as isize + mv.y as isize;
            for (i, &c) in cur_row.iter().enumerate() {
                let ref_x = (block.x + i) as isize + mv.x as isize;
                let r = reference.get_clamped(ref_x, ref_y);
                acc += (c as i16 - r as i16).unsigned_abs() as u64;
            }
        }
        acc
    }

    /// Seed `SearchContext`: hashing memo, no early termination.
    pub struct Ctx<'a> {
        pub cur: &'a Plane,
        pub reference: &'a Plane,
        pub block: Rect,
        pub radius: i16,
        pub evaluations: Cell<u64>,
        cache: RefCell<HashMap<MotionVector, u64>>,
    }

    impl<'a> Ctx<'a> {
        pub fn new(cur: &'a Plane, reference: &'a Plane, block: Rect, radius: i16) -> Self {
            Self {
                cur,
                reference,
                block,
                radius,
                evaluations: Cell::new(0),
                cache: RefCell::new(HashMap::new()),
            }
        }

        pub fn try_cost(&self, mv: MotionVector) -> Option<u64> {
            if mv.linf_norm() > self.radius {
                return None;
            }
            if let Some(&c) = self.cache.borrow().get(&mv) {
                return Some(c);
            }
            let c = sad(self.cur, self.reference, &self.block, mv);
            self.cache.borrow_mut().insert(mv, c);
            self.evaluations.set(self.evaluations.get() + 1);
            Some(c)
        }
    }

    /// Seed diamond search over the legacy context.
    pub fn diamond(ctx: &Ctx<'_>) -> (MotionVector, u64) {
        const LDSP: [(i16, i16); 8] = [
            (0, -2),
            (1, -1),
            (2, 0),
            (1, 1),
            (0, 2),
            (-1, 1),
            (-2, 0),
            (-1, -1),
        ];
        const SDSP: [(i16, i16); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];
        let mut best_mv = MotionVector::ZERO;
        let mut best_cost = ctx.try_cost(best_mv).expect("zero in window");
        let try_mv = |mv: MotionVector, best_mv: &mut MotionVector, best_cost: &mut u64| match ctx
            .try_cost(mv)
        {
            Some(c) if c < *best_cost => {
                *best_mv = mv;
                *best_cost = c;
                true
            }
            _ => false,
        };
        let mut guard = 8 * ctx.radius as u32 + 16;
        loop {
            let center = best_mv;
            let mut moved = false;
            for (dx, dy) in LDSP {
                moved |= try_mv(
                    center + MotionVector::new(dx, dy),
                    &mut best_mv,
                    &mut best_cost,
                );
            }
            guard = guard.saturating_sub(1);
            if !moved || guard == 0 {
                break;
            }
        }
        let center = best_mv;
        for (dx, dy) in SDSP {
            try_mv(
                center + MotionVector::new(dx, dy),
                &mut best_mv,
                &mut best_cost,
            );
        }
        (best_mv, best_cost)
    }

    /// Seed `transform::basis`: a mutexed map taken on every call.
    fn basis(n: usize) -> &'static [f64] {
        static CACHE: OnceLock<Mutex<HashMap<usize, &'static [f64]>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut guard = cache.lock().expect("basis cache poisoned");
        if let Some(&m) = guard.get(&n) {
            return m;
        }
        let mut m = vec![0.0f64; n * n];
        let scale0 = (1.0 / n as f64).sqrt();
        let scale = (2.0 / n as f64).sqrt();
        for k in 0..n {
            for i in 0..n {
                let s = if k == 0 { scale0 } else { scale };
                m[k * n + i] =
                    s * ((std::f64::consts::PI / n as f64) * (i as f64 + 0.5) * k as f64).cos();
            }
        }
        let leaked: &'static [f64] = Box::leak(m.into_boxed_slice());
        guard.insert(n, leaked);
        leaked
    }

    /// Seed `transform::forward`: fresh buffers per call.
    pub fn forward(n: usize, input: &[i32]) -> Vec<f64> {
        let c = basis(n);
        let mut tmp = vec![0.0f64; n * n];
        for k in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += c[k * n + i] * input[i * n + j] as f64;
                }
                tmp[k * n + j] = acc;
            }
        }
        let mut out = vec![0.0f64; n * n];
        for k in 0..n {
            for l in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += tmp[k * n + j] * c[l * n + j];
                }
                out[k * n + l] = acc;
            }
        }
        out
    }

    /// Seed `transform::inverse`.
    pub fn inverse(n: usize, coeffs: &[f64]) -> Vec<f64> {
        let c = basis(n);
        let mut tmp = vec![0.0f64; n * n];
        for i in 0..n {
            for l in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += c[k * n + i] * coeffs[k * n + l];
                }
                tmp[i * n + l] = acc;
            }
        }
        let mut out = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..n {
                    acc += tmp[i * n + l] * c[l * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    /// Seed `code_residual`: allocating, mutex-cached DCT.
    #[allow(clippy::too_many_arguments)]
    pub fn code_residual(
        original: &[u8],
        prediction: &[u8],
        w: usize,
        h: usize,
        tx_size: usize,
        qp: Qp,
        writer: &mut BitWriter,
    ) -> (Vec<u8>, u64) {
        let mut recon = prediction.to_vec();
        let mut bits = 0u64;
        let mut residual = vec![0i32; tx_size * tx_size];
        let mut ty = 0;
        while ty < h {
            let mut tx = 0;
            while tx < w {
                for r in 0..tx_size {
                    for c in 0..tx_size {
                        let idx = (ty + r) * w + (tx + c);
                        residual[r * tx_size + c] = original[idx] as i32 - prediction[idx] as i32;
                    }
                }
                let coeffs = forward(tx_size, &residual);
                let levels = quantize(&coeffs, qp);
                bits += code_block(&levels, tx_size, writer);
                let rec_coeffs = dequantize(&levels, qp);
                let rec_res = inverse(tx_size, &rec_coeffs);
                for r in 0..tx_size {
                    for c in 0..tx_size {
                        let idx = (ty + r) * w + (tx + c);
                        let v = prediction[idx] as f64 + rec_res[r * tx_size + c];
                        recon[idx] = v.round().clamp(0.0, 255.0) as u8;
                    }
                }
                tx += tx_size;
            }
            ty += tx_size;
        }
        (recon, bits)
    }

    /// Seed `encode_tile`: the original allocating per-block loop with
    /// diamond motion search, luma + chroma.
    pub fn encode_tile(
        original: &Frame,
        reference: &Frame,
        tile: Rect,
        qp: Qp,
        radius: i16,
        ecfg_block: usize,
    ) -> (u64, MotionVector) {
        let mut writer = BitWriter::new();
        let mut recon_y = Plane::new(tile.w, tile.h);
        let mut recon_u = Plane::new(tile.w / 2, tile.h / 2);
        let mut recon_v = Plane::new(tile.w / 2, tile.h / 2);
        let lambda = qp.lambda();
        let chroma_qp = qp;
        let mut inter_mvs: Vec<MotionVector> = Vec::new();
        let mut prev_mv = MotionVector::ZERO;
        let tile_local = Rect::frame(tile.w, tile.h);
        let mut by = 0;
        while by < tile.h {
            let bh = ecfg_block.min(tile.h - by);
            let mut bx = 0;
            while bx < tile.w {
                let bw = ecfg_block.min(tile.w - bx);
                let abs_block = Rect::new(tile.x + bx, tile.y + by, bw, bh);
                let rel_block = Rect::new(bx, by, bw, bh);
                let orig_block = original.y().copy_rect(&abs_block);

                let intra_refs = IntraRefs::gather(&recon_y, &rel_block, &tile_local);
                let (intra_mode, intra_pred, intra_sad) = intra_refs.best_mode(&orig_block, bw, bh);
                let intra_cost = intra_sad as f64 + lambda * 3.0;

                let ctx = Ctx::new(original.y(), reference.y(), abs_block, radius);
                let (mv, sad_cost) = diamond(&ctx);
                let mvd = mv - prev_mv;
                let header = 1 + se_len(mvd.x as i32) + se_len(mvd.y as i32);
                let inter_cost = sad_cost as f64 + lambda * header as f64;
                let use_inter = inter_cost <= intra_cost;

                let prediction: Vec<u8> = if use_inter {
                    writer.write_bit(true);
                    writer.write_se(mvd.x as i32);
                    writer.write_se(mvd.y as i32);
                    prev_mv = mv;
                    inter_mvs.push(mv);
                    reference.y().copy_block_clamped(
                        abs_block.x as isize + mv.x as isize,
                        abs_block.y as isize + mv.y as isize,
                        bw,
                        bh,
                    )
                } else {
                    writer.write_bit(false);
                    writer.write_bits(intra_mode.index(), 2);
                    intra_pred
                };
                let (recon, _) =
                    code_residual(&orig_block, &prediction, bw, bh, 8, qp, &mut writer);
                recon_y.write_rect(&rel_block, &recon);

                // Chroma (4:2:0).
                let cw = bw / 2;
                let ch = bh / 2;
                let c_abs = Rect::new(abs_block.x / 2, abs_block.y / 2, cw, ch);
                let c_rel = Rect::new(rel_block.x / 2, rel_block.y / 2, cw, ch);
                for (plane_idx, (orig_c, recon_c)) in
                    [(original.u(), &mut recon_u), (original.v(), &mut recon_v)]
                        .into_iter()
                        .enumerate()
                {
                    let orig_cb = orig_c.copy_rect(&c_abs);
                    let pred_cb: Vec<u8> = if use_inter {
                        let mv = *inter_mvs.last().expect("inter chosen");
                        let plane = if plane_idx == 0 {
                            reference.u()
                        } else {
                            reference.v()
                        };
                        plane.copy_block_clamped(
                            c_abs.x as isize + (mv.x / 2) as isize,
                            c_abs.y as isize + (mv.y / 2) as isize,
                            cw,
                            ch,
                        )
                    } else {
                        let c_tile = Rect::frame(tile.w / 2, tile.h / 2);
                        let crefs = IntraRefs::gather(recon_c, &c_rel, &c_tile);
                        crefs.predict(medvt_encoder::IntraMode::Dc, cw, ch)
                    };
                    let (recon, _) =
                        code_residual(&orig_cb, &pred_cb, cw, ch, 4, chroma_qp, &mut writer);
                    recon_c.write_rect(&c_rel, &recon);
                }
                bx += bw;
            }
            by += bh;
        }
        let dominant = inter_mvs
            .get(inter_mvs.len() / 2)
            .copied()
            .unwrap_or(MotionVector::ZERO);
        (writer.bits_written(), dominant)
    }
}

#[derive(Debug, Serialize)]
struct CandidateThroughput {
    window: usize,
    metric: String,
    candidates_per_sweep: u64,
    legacy_mcand_per_s: f64,
    fast_mcand_per_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct FullSearchEarlyExit {
    window: usize,
    legacy_secs_per_search: f64,
    fast_secs_per_search: f64,
    speedup: f64,
    same_mv: bool,
}

#[derive(Debug, Serialize)]
struct TransformThroughput {
    size: usize,
    legacy_blocks_per_s: f64,
    scratch_blocks_per_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct TileEncodeResult {
    label: String,
    tile: String,
    legacy_ms: f64,
    current_ms: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct KernelsArtifact {
    host_parallelism: usize,
    candidate_throughput: Vec<CandidateThroughput>,
    full_search_early_exit: Vec<FullSearchEarlyExit>,
    transform_throughput: Vec<TransformThroughput>,
    tile_encode: Vec<TileEncodeResult>,
    headline_w64_sad_speedup: f64,
    headline_tile_encode_speedup: f64,
}

fn bench_planes() -> (Frame, Frame) {
    let video = PhantomVideo::builder(BodyPart::Cardiac)
        .resolution(Resolution::new(320, 240))
        .motion(MotionPattern::Pan { dx: 1.2, dy: 0.5 })
        .seed(2026)
        .build();
    (video.render(1), video.render(0))
}

fn candidate_sweeps(cur: &Plane, reference: &Plane) -> Vec<CandidateThroughput> {
    let block = Rect::new(144, 112, 16, 16);
    let mut out = Vec::new();
    for window in [
        SearchWindow::W64,
        SearchWindow::W32,
        SearchWindow::W16,
        SearchWindow::W8,
    ] {
        for metric in [CostMetric::Sad, CostMetric::Ssd, CostMetric::Satd] {
            let r = window.radius();
            let candidates = (2 * r as u64 + 1) * (2 * r as u64 + 1);
            let sweep_fast = || {
                let mut acc = 0u64;
                for dy in -r..=r {
                    for dx in -r..=r {
                        acc = acc.wrapping_add(cost::block_cost(
                            metric,
                            cur,
                            reference,
                            &block,
                            MotionVector::new(dx, dy),
                        ));
                    }
                }
                black_box(acc);
            };
            let sweep_legacy = || {
                let mut acc = 0u64;
                for dy in -r..=r {
                    for dx in -r..=r {
                        acc = acc.wrapping_add(cost::reference::block_cost(
                            metric,
                            cur,
                            reference,
                            &block,
                            MotionVector::new(dx, dy),
                        ));
                    }
                }
                black_box(acc);
            };
            let fast = measure(5, sweep_fast);
            let legacy = measure(5, sweep_legacy);
            out.push(CandidateThroughput {
                window: window.size(),
                metric: format!("{metric:?}").to_lowercase(),
                candidates_per_sweep: candidates,
                legacy_mcand_per_s: candidates as f64 / legacy / 1e6,
                fast_mcand_per_s: candidates as f64 / fast / 1e6,
                speedup: legacy / fast,
            });
        }
    }
    out
}

fn full_search_early_exit(cur: &Plane, reference: &Plane) -> Vec<FullSearchEarlyExit> {
    use medvt_motion::{Best, SearchContext};
    let block = Rect::new(144, 112, 16, 16);
    let mut out = Vec::new();
    for window in [SearchWindow::W64, SearchWindow::W32, SearchWindow::W16] {
        let r = window.radius();
        let mut fast_mv = MotionVector::ZERO;
        let fast_secs = measure(5, || {
            let ctx = SearchContext::new(
                cur,
                reference,
                block,
                window,
                CostMetric::Sad,
                MotionVector::ZERO,
            );
            let mut best = Best::seeded(&ctx, &[MotionVector::ZERO]);
            for dy in -r..=r {
                for dx in -r..=r {
                    best.try_candidate(&ctx, MotionVector::new(dx, dy));
                }
            }
            fast_mv = best.mv;
            black_box(best.cost);
        });
        let mut legacy_mv = MotionVector::ZERO;
        let legacy_secs = measure(5, || {
            let ctx = legacy::Ctx::new(cur, reference, block, r);
            let mut best_mv = MotionVector::ZERO;
            let mut best_cost = ctx.try_cost(best_mv).expect("zero in window");
            for dy in -r..=r {
                for dx in -r..=r {
                    let mv = MotionVector::new(dx, dy);
                    if let Some(c) = ctx.try_cost(mv) {
                        if c < best_cost {
                            best_cost = c;
                            best_mv = mv;
                        }
                    }
                }
            }
            legacy_mv = best_mv;
            black_box(best_cost);
        });
        out.push(FullSearchEarlyExit {
            window: window.size(),
            legacy_secs_per_search: legacy_secs,
            fast_secs_per_search: fast_secs,
            speedup: legacy_secs / fast_secs,
            same_mv: fast_mv == legacy_mv,
        });
    }
    out
}

fn transform_sweeps() -> Vec<TransformThroughput> {
    use medvt_encoder::quant::{dequantize, dequantize_into, quantize, quantize_into};
    use medvt_encoder::transform::{forward_into, inverse_into, TRANSFORM_SIZES};
    let qp = Qp::new(32).unwrap();
    let mut out = Vec::new();
    for n in TRANSFORM_SIZES {
        let input: Vec<i32> = (0..n * n).map(|i| ((i * 37) % 511) as i32 - 255).collect();
        let reps = (4096 / (n * n)).max(1);
        let legacy = measure(5, || {
            for _ in 0..reps {
                let coeffs = legacy::forward(n, &input);
                let levels = quantize(&coeffs, qp);
                let rec = dequantize(&levels, qp);
                black_box(legacy::inverse(n, &rec));
            }
        });
        let (mut coeffs, mut tmp, mut levels, mut rec, mut res) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let scratch = measure(5, || {
            for _ in 0..reps {
                forward_into(n, &input, &mut coeffs, &mut tmp);
                quantize_into(&coeffs, qp, &mut levels);
                dequantize_into(&levels, qp, &mut rec);
                inverse_into(n, &rec, &mut res, &mut tmp);
                black_box(res.first().copied());
            }
        });
        out.push(TransformThroughput {
            size: n,
            legacy_blocks_per_s: reps as f64 / legacy,
            scratch_blocks_per_s: reps as f64 / scratch,
            speedup: legacy / scratch,
        });
    }
    out
}

fn tile_encodes(cur: &Frame, reference: &Frame) -> Vec<TileEncodeResult> {
    let ecfg = EncoderConfig {
        chroma_qp_offset: 0,
        ..Default::default()
    };
    let qp = Qp::new(32).unwrap();
    let mut out = Vec::new();
    for (label, window) in [
        ("diamond-w16", SearchWindow::W16),
        ("diamond-w32", SearchWindow::W32),
        ("diamond-w64", SearchWindow::W64),
    ] {
        let tile = Rect::new(64, 48, 128, 96);
        let tcfg = TileConfig {
            qp,
            search: SearchSpec::Diamond,
            window,
        };
        let refs: Vec<&Frame> = vec![reference];
        let current = measure(5, || {
            black_box(encode_tile(
                cur,
                &refs,
                FrameKind::Predicted,
                tile,
                &tcfg,
                &ecfg,
            ));
        });
        let legacy = measure(5, || {
            black_box(legacy::encode_tile(
                cur,
                reference,
                tile,
                qp,
                window.radius(),
                ecfg.block_size,
            ));
        });
        out.push(TileEncodeResult {
            label: label.to_string(),
            tile: format!("{}x{}", tile.w, tile.h),
            legacy_ms: legacy * 1e3,
            current_ms: current * 1e3,
            speedup: legacy / current,
        });
    }
    out
}

fn main() {
    let (cur, reference) = bench_planes();

    println!("== candidate-evaluation throughput (exhaustive sweep, exact costs) ==");
    let candidate_throughput = candidate_sweeps(cur.y(), reference.y());
    for c in &candidate_throughput {
        println!(
            "W{:<3} {:<5} {:>8.2} -> {:>8.2} Mcand/s   {:>5.2}x",
            c.window, c.metric, c.legacy_mcand_per_s, c.fast_mcand_per_s, c.speedup
        );
    }

    println!("== full search with early termination (decision-identical) ==");
    let full_search = full_search_early_exit(cur.y(), reference.y());
    for f in &full_search {
        println!(
            "W{:<3} {:>9.3} ms -> {:>9.3} ms   {:>5.2}x   same_mv={}",
            f.window,
            f.legacy_secs_per_search * 1e3,
            f.fast_secs_per_search * 1e3,
            f.speedup,
            f.same_mv
        );
        assert!(
            f.same_mv,
            "early-terminated search changed the motion decision"
        );
    }

    println!("== transform+quant round trip (blocks/s) ==");
    let transform_throughput = transform_sweeps();
    for t in &transform_throughput {
        println!(
            "{:>2}x{:<2} {:>10.0} -> {:>10.0} blocks/s   {:>5.2}x",
            t.size, t.size, t.legacy_blocks_per_s, t.scratch_blocks_per_s, t.speedup
        );
    }

    println!("== full-tile encode (inter, diamond search, luma+chroma) ==");
    let tile_encode = tile_encodes(&cur, &reference);
    for t in &tile_encode {
        println!(
            "{:<12} {} {:>8.2} ms -> {:>8.2} ms   {:>5.2}x",
            t.label, t.tile, t.legacy_ms, t.current_ms, t.speedup
        );
    }

    let headline_w64_sad = candidate_throughput
        .iter()
        .find(|c| c.window == 64 && c.metric == "sad")
        .map(|c| c.speedup)
        .unwrap_or(0.0);
    let headline_tile = tile_encode
        .iter()
        .map(|t| t.speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("headline: W64/SAD candidate speedup {headline_w64_sad:.2}x, tile encode {headline_tile:.2}x");

    let artifact = KernelsArtifact {
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        candidate_throughput,
        full_search_early_exit: full_search,
        transform_throughput,
        tile_encode,
        headline_w64_sad_speedup: headline_w64_sad,
        headline_tile_encode_speedup: headline_tile,
    };
    let path = write_artifact("kernels_bench", &artifact);
    println!("artifact: {}", path.display());
}

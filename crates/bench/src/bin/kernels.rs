//! Kernel performance trajectory: measured before/after of the encode
//! hot-path optimizations.
//!
//! The `legacy` module replicates the pre-optimization kernels
//! verbatim — per-sample clamped SAD for every candidate, a
//! `HashMap<MotionVector, u64>` candidate memo, a `Mutex<HashMap>`
//! DCT basis cache and fresh `Vec` allocations per block — so each
//! release of this repo carries a measured comparison against the
//! same baseline instead of trusting a number in a README.
//!
//! Emits `kernels_bench.json` (under `MEDVT_OUT`, default
//! `target/experiments`) with:
//!
//! * candidate-evaluation throughput per search window and metric,
//!   legacy vs fast path (exhaustive sweep, exact costs);
//! * SIMD dispatch-tier throughput per metric: the active tier
//!   (AVX2/SSE2) against the scalar tier pinned via
//!   `cost::simd::with_tier`, plus the resolved dispatch metadata;
//! * full-search throughput with the early-termination running-best
//!   path (decision-identical, far fewer samples per candidate);
//! * bitstream-writer throughput: word-batched `BitWriter` against the
//!   retained per-bit `bits::reference` writer on coefficient coding
//!   and Exp-Golomb bursts;
//! * transform+quant round-trip blocks/s per size, allocating vs
//!   scratch-reuse `_into` kernels, and the fixed-point `TxPath::Int`
//!   pipeline against f64 with its measured max coefficient divergence;
//! * full-tile encode wall time, legacy loop vs current loop.
//!
//! Usage: `cargo run --release -p medvt-bench --bin kernels`.

use medvt_bench::write_artifact;
use medvt_encoder::{encode_tile, EncoderConfig, Qp, SearchSpec, TileConfig};
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt_frame::Resolution;
use medvt_frame::{Frame, FrameKind, Plane, Rect};
use medvt_motion::cost::simd;
use medvt_motion::{cost, CostMetric, MotionVector, SearchWindow};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// Median seconds of `runs` timed executions (after one warmup).
fn measure(runs: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The pre-optimization kernels, replicated verbatim from the seed
/// sources so the "before" column stays measurable after the
/// optimized code replaced them.
mod legacy {
    use medvt_encoder::bits::{code_block, se_len, BitWriter};
    use medvt_encoder::quant::{dequantize, quantize};
    use medvt_encoder::{IntraRefs, Qp};
    use medvt_frame::{Frame, Plane, Rect};
    use medvt_motion::MotionVector;
    use std::cell::{Cell, RefCell};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    /// Seed `cost::sad`: per-sample clamped access for every candidate.
    pub fn sad(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector) -> u64 {
        let mut acc = 0u64;
        for row in block.y..block.bottom() {
            let cur_row = &cur.row(row)[block.x..block.right()];
            let ref_y = row as isize + mv.y as isize;
            for (i, &c) in cur_row.iter().enumerate() {
                let ref_x = (block.x + i) as isize + mv.x as isize;
                let r = reference.get_clamped(ref_x, ref_y);
                acc += (c as i16 - r as i16).unsigned_abs() as u64;
            }
        }
        acc
    }

    /// Seed `SearchContext`: hashing memo, no early termination.
    pub struct Ctx<'a> {
        pub cur: &'a Plane,
        pub reference: &'a Plane,
        pub block: Rect,
        pub radius: i16,
        pub evaluations: Cell<u64>,
        cache: RefCell<HashMap<MotionVector, u64>>,
    }

    impl<'a> Ctx<'a> {
        pub fn new(cur: &'a Plane, reference: &'a Plane, block: Rect, radius: i16) -> Self {
            Self {
                cur,
                reference,
                block,
                radius,
                evaluations: Cell::new(0),
                cache: RefCell::new(HashMap::new()),
            }
        }

        pub fn try_cost(&self, mv: MotionVector) -> Option<u64> {
            if mv.linf_norm() > self.radius {
                return None;
            }
            if let Some(&c) = self.cache.borrow().get(&mv) {
                return Some(c);
            }
            let c = sad(self.cur, self.reference, &self.block, mv);
            self.cache.borrow_mut().insert(mv, c);
            self.evaluations.set(self.evaluations.get() + 1);
            Some(c)
        }
    }

    /// Seed diamond search over the legacy context.
    pub fn diamond(ctx: &Ctx<'_>) -> (MotionVector, u64) {
        const LDSP: [(i16, i16); 8] = [
            (0, -2),
            (1, -1),
            (2, 0),
            (1, 1),
            (0, 2),
            (-1, 1),
            (-2, 0),
            (-1, -1),
        ];
        const SDSP: [(i16, i16); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];
        let mut best_mv = MotionVector::ZERO;
        let mut best_cost = ctx.try_cost(best_mv).expect("zero in window");
        let try_mv = |mv: MotionVector, best_mv: &mut MotionVector, best_cost: &mut u64| match ctx
            .try_cost(mv)
        {
            Some(c) if c < *best_cost => {
                *best_mv = mv;
                *best_cost = c;
                true
            }
            _ => false,
        };
        let mut guard = 8 * ctx.radius as u32 + 16;
        loop {
            let center = best_mv;
            let mut moved = false;
            for (dx, dy) in LDSP {
                moved |= try_mv(
                    center + MotionVector::new(dx, dy),
                    &mut best_mv,
                    &mut best_cost,
                );
            }
            guard = guard.saturating_sub(1);
            if !moved || guard == 0 {
                break;
            }
        }
        let center = best_mv;
        for (dx, dy) in SDSP {
            try_mv(
                center + MotionVector::new(dx, dy),
                &mut best_mv,
                &mut best_cost,
            );
        }
        (best_mv, best_cost)
    }

    /// Seed `transform::basis`: a mutexed map taken on every call.
    fn basis(n: usize) -> &'static [f64] {
        static CACHE: OnceLock<Mutex<HashMap<usize, &'static [f64]>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut guard = cache.lock().expect("basis cache poisoned");
        if let Some(&m) = guard.get(&n) {
            return m;
        }
        let mut m = vec![0.0f64; n * n];
        let scale0 = (1.0 / n as f64).sqrt();
        let scale = (2.0 / n as f64).sqrt();
        for k in 0..n {
            for i in 0..n {
                let s = if k == 0 { scale0 } else { scale };
                m[k * n + i] =
                    s * ((std::f64::consts::PI / n as f64) * (i as f64 + 0.5) * k as f64).cos();
            }
        }
        let leaked: &'static [f64] = Box::leak(m.into_boxed_slice());
        guard.insert(n, leaked);
        leaked
    }

    /// Seed `transform::forward`: fresh buffers per call.
    pub fn forward(n: usize, input: &[i32]) -> Vec<f64> {
        let c = basis(n);
        let mut tmp = vec![0.0f64; n * n];
        for k in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += c[k * n + i] * input[i * n + j] as f64;
                }
                tmp[k * n + j] = acc;
            }
        }
        let mut out = vec![0.0f64; n * n];
        for k in 0..n {
            for l in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += tmp[k * n + j] * c[l * n + j];
                }
                out[k * n + l] = acc;
            }
        }
        out
    }

    /// Seed `transform::inverse`.
    pub fn inverse(n: usize, coeffs: &[f64]) -> Vec<f64> {
        let c = basis(n);
        let mut tmp = vec![0.0f64; n * n];
        for i in 0..n {
            for l in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += c[k * n + i] * coeffs[k * n + l];
                }
                tmp[i * n + l] = acc;
            }
        }
        let mut out = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..n {
                    acc += tmp[i * n + l] * c[l * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    /// Seed `code_residual`: allocating, mutex-cached DCT.
    #[allow(clippy::too_many_arguments)]
    pub fn code_residual(
        original: &[u8],
        prediction: &[u8],
        w: usize,
        h: usize,
        tx_size: usize,
        qp: Qp,
        writer: &mut BitWriter,
    ) -> (Vec<u8>, u64) {
        let mut recon = prediction.to_vec();
        let mut bits = 0u64;
        let mut residual = vec![0i32; tx_size * tx_size];
        let mut ty = 0;
        while ty < h {
            let mut tx = 0;
            while tx < w {
                for r in 0..tx_size {
                    for c in 0..tx_size {
                        let idx = (ty + r) * w + (tx + c);
                        residual[r * tx_size + c] = original[idx] as i32 - prediction[idx] as i32;
                    }
                }
                let coeffs = forward(tx_size, &residual);
                let levels = quantize(&coeffs, qp);
                bits += code_block(&levels, tx_size, writer);
                let rec_coeffs = dequantize(&levels, qp);
                let rec_res = inverse(tx_size, &rec_coeffs);
                for r in 0..tx_size {
                    for c in 0..tx_size {
                        let idx = (ty + r) * w + (tx + c);
                        let v = prediction[idx] as f64 + rec_res[r * tx_size + c];
                        recon[idx] = v.round().clamp(0.0, 255.0) as u8;
                    }
                }
                tx += tx_size;
            }
            ty += tx_size;
        }
        (recon, bits)
    }

    /// Seed `encode_tile`: the original allocating per-block loop with
    /// diamond motion search, luma + chroma.
    pub fn encode_tile(
        original: &Frame,
        reference: &Frame,
        tile: Rect,
        qp: Qp,
        radius: i16,
        ecfg_block: usize,
    ) -> (u64, MotionVector) {
        let mut writer = BitWriter::new();
        let mut recon_y = Plane::new(tile.w, tile.h);
        let mut recon_u = Plane::new(tile.w / 2, tile.h / 2);
        let mut recon_v = Plane::new(tile.w / 2, tile.h / 2);
        let lambda = qp.lambda();
        let chroma_qp = qp;
        let mut inter_mvs: Vec<MotionVector> = Vec::new();
        let mut prev_mv = MotionVector::ZERO;
        let tile_local = Rect::frame(tile.w, tile.h);
        let mut by = 0;
        while by < tile.h {
            let bh = ecfg_block.min(tile.h - by);
            let mut bx = 0;
            while bx < tile.w {
                let bw = ecfg_block.min(tile.w - bx);
                let abs_block = Rect::new(tile.x + bx, tile.y + by, bw, bh);
                let rel_block = Rect::new(bx, by, bw, bh);
                let orig_block = original.y().copy_rect(&abs_block);

                let intra_refs = IntraRefs::gather(&recon_y, &rel_block, &tile_local);
                let (intra_mode, intra_pred, intra_sad) = intra_refs.best_mode(&orig_block, bw, bh);
                let intra_cost = intra_sad as f64 + lambda * 3.0;

                let ctx = Ctx::new(original.y(), reference.y(), abs_block, radius);
                let (mv, sad_cost) = diamond(&ctx);
                let mvd = mv - prev_mv;
                let header = 1 + se_len(mvd.x as i32) + se_len(mvd.y as i32);
                let inter_cost = sad_cost as f64 + lambda * header as f64;
                let use_inter = inter_cost <= intra_cost;

                let prediction: Vec<u8> = if use_inter {
                    writer.write_bit(true);
                    writer.write_se(mvd.x as i32);
                    writer.write_se(mvd.y as i32);
                    prev_mv = mv;
                    inter_mvs.push(mv);
                    reference.y().copy_block_clamped(
                        abs_block.x as isize + mv.x as isize,
                        abs_block.y as isize + mv.y as isize,
                        bw,
                        bh,
                    )
                } else {
                    writer.write_bit(false);
                    writer.write_bits(intra_mode.index(), 2);
                    intra_pred
                };
                let (recon, _) =
                    code_residual(&orig_block, &prediction, bw, bh, 8, qp, &mut writer);
                recon_y.write_rect(&rel_block, &recon);

                // Chroma (4:2:0).
                let cw = bw / 2;
                let ch = bh / 2;
                let c_abs = Rect::new(abs_block.x / 2, abs_block.y / 2, cw, ch);
                let c_rel = Rect::new(rel_block.x / 2, rel_block.y / 2, cw, ch);
                for (plane_idx, (orig_c, recon_c)) in
                    [(original.u(), &mut recon_u), (original.v(), &mut recon_v)]
                        .into_iter()
                        .enumerate()
                {
                    let orig_cb = orig_c.copy_rect(&c_abs);
                    let pred_cb: Vec<u8> = if use_inter {
                        let mv = *inter_mvs.last().expect("inter chosen");
                        let plane = if plane_idx == 0 {
                            reference.u()
                        } else {
                            reference.v()
                        };
                        plane.copy_block_clamped(
                            c_abs.x as isize + (mv.x / 2) as isize,
                            c_abs.y as isize + (mv.y / 2) as isize,
                            cw,
                            ch,
                        )
                    } else {
                        let c_tile = Rect::frame(tile.w / 2, tile.h / 2);
                        let crefs = IntraRefs::gather(recon_c, &c_rel, &c_tile);
                        crefs.predict(medvt_encoder::IntraMode::Dc, cw, ch)
                    };
                    let (recon, _) =
                        code_residual(&orig_cb, &pred_cb, cw, ch, 4, chroma_qp, &mut writer);
                    recon_c.write_rect(&c_rel, &recon);
                }
                bx += bw;
            }
            by += bh;
        }
        let dominant = inter_mvs
            .get(inter_mvs.len() / 2)
            .copied()
            .unwrap_or(MotionVector::ZERO);
        (writer.bits_written(), dominant)
    }
}

#[derive(Debug, Serialize)]
struct CandidateThroughput {
    window: usize,
    metric: String,
    candidates_per_sweep: u64,
    legacy_mcand_per_s: f64,
    fast_mcand_per_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Dispatch {
    /// Resolved dispatch tier (`avx2`, `sse2` or `scalar`).
    tier: String,
    /// Whether `MEDVT_FORCE_SCALAR` pinned the dispatch to scalar.
    forced_scalar: bool,
}

#[derive(Debug, Serialize)]
struct SimdKernelThroughput {
    metric: String,
    tier: String,
    scalar_mcand_per_s: f64,
    simd_mcand_per_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct WriterThroughput {
    workload: String,
    per_bit_mbits_per_s: f64,
    batched_mbits_per_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct IntTransformThroughput {
    size: usize,
    f64_blocks_per_s: f64,
    int_blocks_per_s: f64,
    speedup: f64,
    max_abs_coeff_diff: f64,
}

#[derive(Debug, Serialize)]
struct FullSearchEarlyExit {
    window: usize,
    legacy_secs_per_search: f64,
    fast_secs_per_search: f64,
    speedup: f64,
    same_mv: bool,
}

#[derive(Debug, Serialize)]
struct TransformThroughput {
    size: usize,
    legacy_blocks_per_s: f64,
    scratch_blocks_per_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct TileEncodeResult {
    label: String,
    tile: String,
    legacy_ms: f64,
    current_ms: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct KernelsArtifact {
    host_parallelism: usize,
    dispatch: Dispatch,
    candidate_throughput: Vec<CandidateThroughput>,
    simd_kernels: Vec<SimdKernelThroughput>,
    full_search_early_exit: Vec<FullSearchEarlyExit>,
    bit_writer: Vec<WriterThroughput>,
    transform_throughput: Vec<TransformThroughput>,
    int_transform: Vec<IntTransformThroughput>,
    tile_encode: Vec<TileEncodeResult>,
    headline_w64_sad_speedup: f64,
    headline_tile_encode_speedup: f64,
}

fn bench_planes() -> (Frame, Frame) {
    let video = PhantomVideo::builder(BodyPart::Cardiac)
        .resolution(Resolution::new(320, 240))
        .motion(MotionPattern::Pan { dx: 1.2, dy: 0.5 })
        .seed(2026)
        .build();
    (video.render(1), video.render(0))
}

fn candidate_sweeps(cur: &Plane, reference: &Plane) -> Vec<CandidateThroughput> {
    let block = Rect::new(144, 112, 16, 16);
    let mut out = Vec::new();
    for window in [
        SearchWindow::W64,
        SearchWindow::W32,
        SearchWindow::W16,
        SearchWindow::W8,
    ] {
        for metric in [CostMetric::Sad, CostMetric::Ssd, CostMetric::Satd] {
            let r = window.radius();
            let candidates = (2 * r as u64 + 1) * (2 * r as u64 + 1);
            let sweep_fast = || {
                let mut acc = 0u64;
                for dy in -r..=r {
                    for dx in -r..=r {
                        acc = acc.wrapping_add(cost::block_cost(
                            metric,
                            cur,
                            reference,
                            &block,
                            MotionVector::new(dx, dy),
                        ));
                    }
                }
                black_box(acc);
            };
            let sweep_legacy = || {
                let mut acc = 0u64;
                for dy in -r..=r {
                    for dx in -r..=r {
                        acc = acc.wrapping_add(cost::reference::block_cost(
                            metric,
                            cur,
                            reference,
                            &block,
                            MotionVector::new(dx, dy),
                        ));
                    }
                }
                black_box(acc);
            };
            let fast = measure(5, sweep_fast);
            let legacy = measure(5, sweep_legacy);
            out.push(CandidateThroughput {
                window: window.size(),
                metric: format!("{metric:?}").to_lowercase(),
                candidates_per_sweep: candidates,
                legacy_mcand_per_s: candidates as f64 / legacy / 1e6,
                fast_mcand_per_s: candidates as f64 / fast / 1e6,
                speedup: legacy / fast,
            });
        }
    }
    out
}

/// Exhaustive W32 sweeps per metric with the dispatch tier pinned:
/// the active SIMD tier against the identical code path forced scalar.
fn simd_kernel_sweeps(cur: &Plane, reference: &Plane) -> Vec<SimdKernelThroughput> {
    let block = Rect::new(144, 112, 16, 16);
    let active = simd::tier();
    let r = SearchWindow::W32.radius();
    let candidates = (2 * r as u64 + 1) * (2 * r as u64 + 1);
    let mut out = Vec::new();
    for metric in [CostMetric::Sad, CostMetric::Ssd, CostMetric::Satd] {
        let sweep = || {
            let mut acc = 0u64;
            for dy in -r..=r {
                for dx in -r..=r {
                    acc = acc.wrapping_add(cost::block_cost(
                        metric,
                        cur,
                        reference,
                        &block,
                        MotionVector::new(dx, dy),
                    ));
                }
            }
            black_box(acc);
        };
        let simd_secs = simd::with_tier(active, || measure(5, sweep));
        let scalar_secs = simd::with_tier(simd::DispatchTier::Scalar, || measure(5, sweep));
        out.push(SimdKernelThroughput {
            metric: format!("{metric:?}").to_lowercase(),
            tier: active.name().to_string(),
            scalar_mcand_per_s: candidates as f64 / scalar_secs / 1e6,
            simd_mcand_per_s: candidates as f64 / simd_secs / 1e6,
            speedup: scalar_secs / simd_secs,
        });
    }
    out
}

/// Word-batched `BitWriter` against the retained per-bit reference
/// writer, on the syntax workloads the encoder actually emits.
fn writer_sweeps() -> Vec<WriterThroughput> {
    use medvt_encoder::bits::{self, BitWriter};
    // Two coefficient workloads: a high-QP sparse block (run-length
    // dominated, ~70 bits) and a low-QP dense block where every
    // position is significant (write-dominated, ~600 bits).
    let sparse: Vec<i32> = (0..64)
        .map(|i| match i {
            0 => 13,
            1 | 8 => -4,
            2 | 9 | 16 => 2,
            10 | 17 => -1,
            24 | 3 => 1,
            _ => 0,
        })
        .collect();
    let dense: Vec<i32> = (0..64i32)
        .map(|i| (20 - i % 19) * if i % 2 == 0 { 1 } else { -1 })
        .collect();
    let mut out = Vec::new();

    // Coefficient coding: the dominant bitstream workload.
    for (label, levels) in [("code_block dense", &dense), ("code_block sparse", &sparse)] {
        let reps = 2000usize;
        let mut w_new = BitWriter::new();
        let batched = measure(9, || {
            w_new.clear();
            for _ in 0..reps {
                black_box(bits::code_block(levels, 8, &mut w_new));
            }
        });
        let bits_per_rep = bits::block_bits(levels, 8);
        let per_bit = measure(9, || {
            let mut w_old = bits::reference::BitWriter::new();
            for _ in 0..reps {
                black_box(bits::reference::code_block(levels, 8, &mut w_old));
            }
        });
        let total_bits = (reps as u64 * bits_per_rep) as f64;
        out.push(WriterThroughput {
            workload: label.to_string(),
            per_bit_mbits_per_s: total_bits / per_bit / 1e6,
            batched_mbits_per_s: total_bits / batched / 1e6,
            speedup: per_bit / batched,
        });
    }

    // Exp-Golomb burst: header-style unsigned codes, short and long.
    let values: Vec<u32> = (0..4096u32).map(|i| (i * 2654435761) % 100_000).collect();
    let burst_bits: u64 = values.iter().map(|&v| bits::ue_len(v)).sum();
    let mut w_new = BitWriter::new();
    let batched = measure(9, || {
        w_new.clear();
        for &v in &values {
            w_new.write_ue(v);
        }
        black_box(w_new.bits_written());
    });
    let per_bit = measure(9, || {
        let mut w = bits::reference::BitWriter::new();
        for &v in &values {
            w.write_ue(v);
        }
        black_box(w.bits_written());
    });
    out.push(WriterThroughput {
        workload: "write_ue burst".to_string(),
        per_bit_mbits_per_s: burst_bits as f64 / per_bit / 1e6,
        batched_mbits_per_s: burst_bits as f64 / batched / 1e6,
        speedup: per_bit / batched,
    });
    out
}

/// Fixed-point `transform::int` against the f64 pipeline (forward +
/// quant + dequant + inverse per block), plus the measured forward
/// coefficient divergence on the bench input.
fn int_transform_sweeps() -> Vec<IntTransformThroughput> {
    use medvt_encoder::quant::{
        dequantize_int_into, dequantize_into, quantize_int_into, quantize_into,
    };
    use medvt_encoder::transform::{forward_into, int, inverse_into, TRANSFORM_SIZES};
    let qp = Qp::new(32).unwrap();
    let mut out = Vec::new();
    for n in TRANSFORM_SIZES {
        let input: Vec<i32> = (0..n * n).map(|i| ((i * 37) % 511) as i32 - 255).collect();
        let reps = (4096 / (n * n)).max(1);
        let (mut coeffs, mut tmp, mut levels, mut rec, mut res) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let f64_secs = measure(5, || {
            for _ in 0..reps {
                forward_into(n, &input, &mut coeffs, &mut tmp);
                quantize_into(&coeffs, qp, &mut levels);
                dequantize_into(&levels, qp, &mut rec);
                inverse_into(n, &rec, &mut res, &mut tmp);
                black_box(res.first().copied());
            }
        });
        let (mut coeffs_i, mut tmp_i, mut rec_i, mut res_i, mut wide) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let int_secs = measure(5, || {
            for _ in 0..reps {
                int::forward_into(n, &input, &mut coeffs_i, &mut tmp_i);
                quantize_int_into(&coeffs_i, qp, &mut levels);
                dequantize_int_into(&levels, qp, &mut rec_i);
                int::inverse_into(n, &rec_i, &mut res_i, &mut tmp_i, &mut wide);
                black_box(res_i.first().copied());
            }
        });
        forward_into(n, &input, &mut coeffs, &mut tmp);
        int::forward_into(n, &input, &mut coeffs_i, &mut tmp_i);
        let max_abs_diff = coeffs
            .iter()
            .zip(&coeffs_i)
            .map(|(&f, &i)| (f - i as f64).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_abs_diff <= int::MAX_ABS_DIFF_VS_F64 as f64,
            "int transform diverged beyond its documented bound: {max_abs_diff}"
        );
        out.push(IntTransformThroughput {
            size: n,
            f64_blocks_per_s: reps as f64 / f64_secs,
            int_blocks_per_s: reps as f64 / int_secs,
            speedup: f64_secs / int_secs,
            max_abs_coeff_diff: max_abs_diff,
        });
    }
    out
}

fn full_search_early_exit(cur: &Plane, reference: &Plane) -> Vec<FullSearchEarlyExit> {
    use medvt_motion::{Best, SearchContext};
    let block = Rect::new(144, 112, 16, 16);
    let mut out = Vec::new();
    for window in [SearchWindow::W64, SearchWindow::W32, SearchWindow::W16] {
        let r = window.radius();
        let mut fast_mv = MotionVector::ZERO;
        let fast_secs = measure(5, || {
            let ctx = SearchContext::new(
                cur,
                reference,
                block,
                window,
                CostMetric::Sad,
                MotionVector::ZERO,
            );
            let mut best = Best::seeded(&ctx, &[MotionVector::ZERO]);
            for dy in -r..=r {
                for dx in -r..=r {
                    best.try_candidate(&ctx, MotionVector::new(dx, dy));
                }
            }
            fast_mv = best.mv;
            black_box(best.cost);
        });
        let mut legacy_mv = MotionVector::ZERO;
        let legacy_secs = measure(5, || {
            let ctx = legacy::Ctx::new(cur, reference, block, r);
            let mut best_mv = MotionVector::ZERO;
            let mut best_cost = ctx.try_cost(best_mv).expect("zero in window");
            for dy in -r..=r {
                for dx in -r..=r {
                    let mv = MotionVector::new(dx, dy);
                    if let Some(c) = ctx.try_cost(mv) {
                        if c < best_cost {
                            best_cost = c;
                            best_mv = mv;
                        }
                    }
                }
            }
            legacy_mv = best_mv;
            black_box(best_cost);
        });
        out.push(FullSearchEarlyExit {
            window: window.size(),
            legacy_secs_per_search: legacy_secs,
            fast_secs_per_search: fast_secs,
            speedup: legacy_secs / fast_secs,
            same_mv: fast_mv == legacy_mv,
        });
    }
    out
}

fn transform_sweeps() -> Vec<TransformThroughput> {
    use medvt_encoder::quant::{dequantize, dequantize_into, quantize, quantize_into};
    use medvt_encoder::transform::{forward_into, inverse_into, TRANSFORM_SIZES};
    let qp = Qp::new(32).unwrap();
    let mut out = Vec::new();
    for n in TRANSFORM_SIZES {
        let input: Vec<i32> = (0..n * n).map(|i| ((i * 37) % 511) as i32 - 255).collect();
        let reps = (4096 / (n * n)).max(1);
        let legacy = measure(5, || {
            for _ in 0..reps {
                let coeffs = legacy::forward(n, &input);
                let levels = quantize(&coeffs, qp);
                let rec = dequantize(&levels, qp);
                black_box(legacy::inverse(n, &rec));
            }
        });
        let (mut coeffs, mut tmp, mut levels, mut rec, mut res) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let scratch = measure(5, || {
            for _ in 0..reps {
                forward_into(n, &input, &mut coeffs, &mut tmp);
                quantize_into(&coeffs, qp, &mut levels);
                dequantize_into(&levels, qp, &mut rec);
                inverse_into(n, &rec, &mut res, &mut tmp);
                black_box(res.first().copied());
            }
        });
        out.push(TransformThroughput {
            size: n,
            legacy_blocks_per_s: reps as f64 / legacy,
            scratch_blocks_per_s: reps as f64 / scratch,
            speedup: legacy / scratch,
        });
    }
    out
}

fn tile_encodes(cur: &Frame, reference: &Frame) -> Vec<TileEncodeResult> {
    let ecfg = EncoderConfig {
        chroma_qp_offset: 0,
        ..Default::default()
    };
    let qp = Qp::new(32).unwrap();
    let mut out = Vec::new();
    for (label, window) in [
        ("diamond-w16", SearchWindow::W16),
        ("diamond-w32", SearchWindow::W32),
        ("diamond-w64", SearchWindow::W64),
    ] {
        let tile = Rect::new(64, 48, 128, 96);
        let tcfg = TileConfig {
            qp,
            search: SearchSpec::Diamond,
            window,
        };
        let refs: Vec<&Frame> = vec![reference];
        let current = measure(5, || {
            black_box(encode_tile(
                cur,
                &refs,
                FrameKind::Predicted,
                tile,
                &tcfg,
                &ecfg,
            ));
        });
        let legacy = measure(5, || {
            black_box(legacy::encode_tile(
                cur,
                reference,
                tile,
                qp,
                window.radius(),
                ecfg.block_size,
            ));
        });
        out.push(TileEncodeResult {
            label: label.to_string(),
            tile: format!("{}x{}", tile.w, tile.h),
            legacy_ms: legacy * 1e3,
            current_ms: current * 1e3,
            speedup: legacy / current,
        });
    }
    out
}

fn main() {
    let (cur, reference) = bench_planes();
    let dispatch = Dispatch {
        tier: simd::tier().name().to_string(),
        forced_scalar: simd::forced_scalar(),
    };
    println!(
        "dispatch tier: {} (forced_scalar={})",
        dispatch.tier, dispatch.forced_scalar
    );

    println!("== candidate-evaluation throughput (exhaustive sweep, exact costs) ==");
    let candidate_throughput = candidate_sweeps(cur.y(), reference.y());
    for c in &candidate_throughput {
        println!(
            "W{:<3} {:<5} {:>8.2} -> {:>8.2} Mcand/s   {:>5.2}x",
            c.window, c.metric, c.legacy_mcand_per_s, c.fast_mcand_per_s, c.speedup
        );
    }

    println!("== SIMD dispatch tier vs scalar (W32 sweep, same code path) ==");
    let simd_kernels = simd_kernel_sweeps(cur.y(), reference.y());
    for s in &simd_kernels {
        println!(
            "{:<5} {:<6} {:>8.2} -> {:>8.2} Mcand/s   {:>5.2}x",
            s.metric, s.tier, s.scalar_mcand_per_s, s.simd_mcand_per_s, s.speedup
        );
        if s.tier == "avx2" && s.metric == "satd" {
            assert!(
                s.speedup >= 2.0,
                "SATD SIMD speedup regressed below 2x on AVX2: {:.2}x",
                s.speedup
            );
        }
    }

    println!("== bitstream writer: word-batched vs per-bit reference ==");
    let bit_writer = writer_sweeps();
    for w in &bit_writer {
        println!(
            "{:<16} {:>8.1} -> {:>8.1} Mbit/s   {:>5.2}x",
            w.workload, w.per_bit_mbits_per_s, w.batched_mbits_per_s, w.speedup
        );
        if w.workload == "code_block dense" {
            assert!(
                w.speedup >= 3.0,
                "coefficient coding regressed below 3x vs the per-bit writer: {:.2}x",
                w.speedup
            );
        }
    }

    println!("== full search with early termination (decision-identical) ==");
    let full_search = full_search_early_exit(cur.y(), reference.y());
    for f in &full_search {
        println!(
            "W{:<3} {:>9.3} ms -> {:>9.3} ms   {:>5.2}x   same_mv={}",
            f.window,
            f.legacy_secs_per_search * 1e3,
            f.fast_secs_per_search * 1e3,
            f.speedup,
            f.same_mv
        );
        assert!(
            f.same_mv,
            "early-terminated search changed the motion decision"
        );
    }

    println!("== transform+quant round trip (blocks/s) ==");
    let transform_throughput = transform_sweeps();
    for t in &transform_throughput {
        println!(
            "{:>2}x{:<2} {:>10.0} -> {:>10.0} blocks/s   {:>5.2}x",
            t.size, t.size, t.legacy_blocks_per_s, t.scratch_blocks_per_s, t.speedup
        );
    }

    println!("== fixed-point transform (TxPath::Int) vs f64 pipeline ==");
    let int_transform = int_transform_sweeps();
    for t in &int_transform {
        println!(
            "{:>2}x{:<2} {:>10.0} -> {:>10.0} blocks/s   {:>5.2}x   max|Δcoeff|={:.2}",
            t.size, t.size, t.f64_blocks_per_s, t.int_blocks_per_s, t.speedup, t.max_abs_coeff_diff
        );
    }

    println!("== full-tile encode (inter, diamond search, luma+chroma) ==");
    let tile_encode = tile_encodes(&cur, &reference);
    for t in &tile_encode {
        println!(
            "{:<12} {} {:>8.2} ms -> {:>8.2} ms   {:>5.2}x",
            t.label, t.tile, t.legacy_ms, t.current_ms, t.speedup
        );
    }

    let headline_w64_sad = candidate_throughput
        .iter()
        .find(|c| c.window == 64 && c.metric == "sad")
        .map(|c| c.speedup)
        .unwrap_or(0.0);
    let headline_tile = tile_encode
        .iter()
        .map(|t| t.speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("headline: W64/SAD candidate speedup {headline_w64_sad:.2}x, tile encode {headline_tile:.2}x");

    let artifact = KernelsArtifact {
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        dispatch,
        candidate_throughput,
        simd_kernels,
        full_search_early_exit: full_search,
        bit_writer,
        transform_throughput,
        int_transform,
        tile_encode,
        headline_w64_sad_speedup: headline_w64_sad,
        headline_tile_encode_speedup: headline_tile,
    };
    let path = write_artifact("kernels_bench", &artifact);
    println!("artifact: {}", path.display());
}

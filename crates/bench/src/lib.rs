//! Shared harness for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! Every binary honours three environment variables:
//!
//! * `MEDVT_SCALE=full|quick` — `full` uses the paper's geometry
//!   (640x480, long clips; minutes of CPU), `quick` (default) runs a
//!   reduced geometry that preserves every trend in seconds.
//! * `MEDVT_OUT=dir` — where JSON result artifacts are written
//!   (default `target/experiments`).
//! * `MEDVT_BACKEND=sim|pool` — which execution backend serves the
//!   frame slots: the analytical model (default) or the per-core
//!   thread-pool backend. Both report identical statistics by
//!   construction. Profile replay carries no per-tile closures
//!   (`DemandSource::work_for` is `None`), so under `pool` the slots
//!   flow through the worker-pool backend's queueing and carry state
//!   but no tile is re-encoded; the `live` binary is the experiment
//!   that supplies real closures (`medvt_core::LiveWorkload`) and
//!   compares measured wall time against the model.

use medvt_admission::{OnlineConfig, ShardPolicy};
use medvt_analyze::AnalyzerConfig;
use medvt_core::{
    profile_video, Baseline19Controller, BaselineConfig, ContentAwareController, FrameReport,
    LiveWorkload, PipelineConfig, ServerConfig, TileReport, VideoProfile,
};
use medvt_encoder::EncoderConfig;
use medvt_frame::synth::{medical_suite, BodyPart, MotionPattern, PhantomConfig, PhantomVideo};
use medvt_frame::Rect;
use medvt_frame::{Resolution, VideoClip};
use medvt_mpsoc::DvfsPolicy;
use medvt_runtime::{ExecutionBackend, SimBackend, ThreadPoolBackend};
use medvt_sched::{LutBank, WorkloadLut};
use serde::Serialize;
use std::path::PathBuf;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced geometry: 320x240, short clips. Same trends, seconds of
    /// CPU.
    Quick,
    /// Paper geometry: 640x480, long clips.
    Full,
}

impl Scale {
    /// Reads `MEDVT_SCALE` (default `quick`).
    pub fn from_env() -> Scale {
        match std::env::var("MEDVT_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Clip resolution at this scale.
    pub fn resolution(&self) -> Resolution {
        match self {
            Scale::Quick => Resolution::new(320, 240),
            Scale::Full => Resolution::VGA,
        }
    }

    /// Frames per profiled clip.
    pub fn frames(&self) -> usize {
        match self {
            Scale::Quick => 33, // IDR + 4 GOPs
            Scale::Full => 97,  // IDR + 12 GOPs
        }
    }

    /// Frames for the Table I ME sweep (paper: a 400-frame video).
    pub fn me_frames(&self) -> usize {
        match self {
            Scale::Quick => 25,
            Scale::Full => 401,
        }
    }

    /// Minimum tile size for the re-tiler at this scale.
    pub fn min_tile(&self) -> usize {
        match self {
            Scale::Quick => 32,
            Scale::Full => 64,
        }
    }
}

/// Cost model at `scale`: quick-scale frames carry a quarter of the
/// VGA samples, so their cycle constants are multiplied by the area
/// ratio — per-user demand then matches the paper's VGA regime and the
/// scheduler operates at the same cores-per-user operating point.
pub fn cost_model(scale: Scale) -> medvt_encoder::CostModel {
    let k = match scale {
        Scale::Quick => {
            let full = Scale::Full.resolution();
            let quick = Scale::Quick.resolution();
            full.luma_samples() as f64 / quick.luma_samples() as f64
        }
        Scale::Full => 1.0,
    };
    medvt_encoder::CostModel::default().scaled_by(k)
}

/// The pipeline configuration used by every experiment at `scale`.
pub fn pipeline_config(scale: Scale) -> PipelineConfig {
    PipelineConfig {
        analyzer: AnalyzerConfig {
            min_tile_width: scale.min_tile(),
            min_tile_height: scale.min_tile(),
            ..Default::default()
        },
        cost: cost_model(scale),
        ..Default::default()
    }
}

/// The baseline configuration used by every experiment at `scale`.
pub fn baseline_config(scale: Scale) -> BaselineConfig {
    BaselineConfig {
        cost: cost_model(scale),
        ..Default::default()
    }
}

/// Renders the medical suite (the stand-in for the paper's ten
/// anonymized clinical videos) at the experiment scale.
pub fn suite_clips(scale: Scale) -> Vec<(String, String, VideoClip)> {
    medical_suite(2024)
        .into_iter()
        .map(|(name, cfg)| {
            let cfg = PhantomConfig {
                resolution: scale.resolution(),
                ..cfg
            };
            let class = cfg.body_part.label().to_string();
            let video = PhantomVideo::new(cfg);
            (name, class, video.capture(scale.frames()))
        })
        .collect()
}

/// Profiles every suite video through the proposed pipeline, warming
/// per-class LUTs along the way (§III-D1 class transfer).
pub fn proposed_profiles(scale: Scale) -> Vec<VideoProfile> {
    let mut bank = LutBank::new();
    let mut out = Vec::new();
    for (name, class, clip) in suite_clips(scale) {
        let lut: WorkloadLut = bank.seed_for(&class);
        let mut ctl = ContentAwareController::new(pipeline_config(scale), lut);
        let profile = profile_video(
            &name,
            &class,
            &clip,
            &mut ctl,
            &EncoderConfig::default(),
            false,
        );
        bank.learn(&class, ctl.lut());
        out.push(profile);
    }
    out
}

/// Profiles every suite video through the baseline \[19\] pipeline.
///
/// During profiling the cores run flat out (the f_max rail), so
/// \[19\]'s re-tiling trigger fires at GOP boundaries and the tiler
/// converges onto its capacity-matched tile count.
pub fn baseline_profiles(scale: Scale) -> Vec<VideoProfile> {
    suite_clips(scale)
        .into_iter()
        .map(|(name, class, clip)| {
            let mut ctl = Baseline19Controller::new(baseline_config(scale));
            ctl.set_rails_pinned(true);
            profile_video(
                &name,
                &class,
                &clip,
                &mut ctl,
                &EncoderConfig::default(),
                false,
            )
        })
        .collect()
}

/// Synthetic profile for controlled scheduling/admission experiments:
/// 8 frames of `tiles` uniform tiles costing `tile_secs` f_max-seconds
/// each, under body-part `class` (the content-affinity key).
pub fn synthetic_profile(name: &str, class: &str, tiles: usize, tile_secs: f64) -> VideoProfile {
    let tile_reports: Vec<TileReport> = (0..tiles)
        .map(|i| TileReport {
            rect: Rect::new(i * 64, 0, 64, 64),
            cycles: (tile_secs * 3.6e9) as u64,
            fmax_secs: tile_secs,
            bits: 10_000,
            psnr_db: 40.0,
        })
        .collect();
    let frames = (0..8)
        .map(|poc| FrameReport {
            poc,
            kind: 'B',
            tiles: tile_reports.clone(),
        })
        .collect();
    VideoProfile {
        name: name.into(),
        class: class.into(),
        fps: 24.0,
        frames,
        mean_psnr_db: 40.0,
        bitrate_mbps: 2.0,
    }
}

/// The live-transcoding scenario workload shared by `--bin live` and
/// `tests/live_transcode.rs`: a 128x96 phantom pan clip profiled once
/// through the content-aware pipeline (min tile 32), paired with its
/// rendered frames so every placed tile thread carries a real encode.
///
/// Keeping this in one place pins the "CI scenario" the documented
/// measured/modeled tolerance refers to — the bench and the test must
/// not drift apart.
pub fn live_workload(name: &str, part: BodyPart, class: &str, seed: u64) -> LiveWorkload {
    let clip: VideoClip = PhantomVideo::builder(part)
        .resolution(Resolution::new(128, 96))
        .motion(MotionPattern::Pan { dx: 1.0, dy: 0.0 })
        .seed(seed)
        .build()
        .capture(9);
    let cfg = PipelineConfig {
        analyzer: AnalyzerConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut ctl = ContentAwareController::new(cfg, WorkloadLut::new());
    let profile = profile_video(
        name,
        class,
        &clip,
        &mut ctl,
        &EncoderConfig::default(),
        false,
    );
    LiveWorkload::new(
        profile,
        &clip,
        medvt_encoder::TileConfig::default(),
        EncoderConfig::default(),
    )
}

/// The live scenario's serving configuration: 24 fps, 8-slot GOPs,
/// least-loaded sharding, and `RaceToIdle` DVFS so the modeled
/// per-slot makespan stays proportional to the work
/// (stretch-to-deadline would pad every busy slot to 1/FPS,
/// decoupling modeled time from workload size).
pub fn live_online_config(horizon_slots: usize) -> OnlineConfig {
    OnlineConfig {
        fps: 24.0,
        gop_slots: 8,
        horizon_slots,
        headroom: 1.15,
        policy: DvfsPolicy::RaceToIdle,
        shard_policy: ShardPolicy::LeastLoaded,
        evict_miss_windows: 1,
        cost: medvt_admission::CostPlan::unlimited(),
    }
}

/// The host-calibration factor `rho` suggested by a set of observed
/// measured-over-modeled window-time ratios: their geometric mean.
///
/// The ratios are multiplicative errors around the true host-vs-
/// reference speed factor, so the geometric mean — not the arithmetic
/// one — is the unbiased center of the band; it is also what maps the
/// band `[min, max]` to a symmetric `[min/rho, max/rho]` spread around
/// 1.0 after calibration. Feed the result to
/// [`medvt_encoder::CostModel::with_host_speed_factor`] to make
/// `tile_seconds` predict this host's wall time. `None` when no
/// scenario executed real work.
pub fn suggested_host_speed_factor(ratios: &[f64]) -> Option<f64> {
    if ratios.is_empty() {
        return None;
    }
    assert!(
        ratios.iter().all(|r| r.is_finite() && *r > 0.0),
        "measured/modeled ratios must be finite and positive"
    );
    let log_mean = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    Some(log_mean.exp())
}

/// The execution backend selected by `MEDVT_BACKEND` (default `sim`),
/// with its label for artifacts.
pub fn backend_from_env(cfg: &ServerConfig) -> (&'static str, Box<dyn ExecutionBackend>) {
    match std::env::var("MEDVT_BACKEND").as_deref() {
        Ok("pool") | Ok("POOL") => (
            "pool",
            Box::new(ThreadPoolBackend::new(cfg.platform.clone(), cfg.power)),
        ),
        _ => (
            "sim",
            Box::new(SimBackend::new(cfg.platform.clone(), cfg.power)),
        ),
    }
}

/// Writes a JSON artifact under `MEDVT_OUT` (default
/// `target/experiments`) and returns its path.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let dir = std::env::var("MEDVT_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/experiments"));
    std::fs::create_dir_all(&dir).expect("create artifact directory");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    std::fs::write(&path, json).expect("write artifact");
    path
}

/// Formats a Markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    cells.join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_default_is_quick() {
        // Do not set the var in tests; default applies.
        assert_eq!(Scale::Quick.resolution(), Resolution::new(320, 240));
        assert_eq!(Scale::Full.resolution(), Resolution::VGA);
        assert!(Scale::Full.frames() > Scale::Quick.frames());
    }

    #[test]
    fn suite_has_ten_videos() {
        let clips = suite_clips(Scale::Quick);
        assert_eq!(clips.len(), 10);
        for (name, class, clip) in &clips {
            assert!(!name.is_empty());
            assert!(!class.is_empty());
            assert_eq!(clip.len(), Scale::Quick.frames());
        }
    }

    #[test]
    fn suggested_rho_is_the_geometric_mean() {
        assert_eq!(suggested_host_speed_factor(&[]), None);
        let rho = suggested_host_speed_factor(&[0.25, 4.0]).unwrap();
        assert!((rho - 1.0).abs() < 1e-12, "geomean of 1/4 and 4 is 1");
        let rho = suggested_host_speed_factor(&[0.5]).unwrap();
        assert!((rho - 0.5).abs() < 1e-12, "a single ratio is its own rho");
        // Round trip: calibrating the cost model by rho scales every
        // modeled tile time by exactly rho.
        let base = medvt_encoder::CostModel::default();
        let calibrated = medvt_encoder::CostModel::with_host_speed_factor(rho);
        let stats = medvt_encoder::TileStats {
            sad_samples: 10_000,
            transform_samples: 4_096,
            bits: 20_000,
            intra_blocks: 4,
            inter_blocks: 12,
            ..medvt_encoder::TileStats::new(Rect::new(0, 0, 64, 64))
        };
        let freq = 3.6e9;
        let ratio = calibrated.tile_seconds(&stats, freq) / base.tile_seconds(&stats, freq);
        assert!((ratio - rho).abs() < 1e-12);
    }

    #[test]
    fn artifact_round_trip() {
        std::env::set_var("MEDVT_OUT", std::env::temp_dir().join("medvt_artifacts"));
        let path = write_artifact("unit_test", &vec![1, 2, 3]);
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains('2'));
    }
}

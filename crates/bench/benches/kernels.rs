//! Criterion smoke bench over the optimized encode kernels: SAD fast
//! path vs the clamped reference spec, the scratch-reuse DCT round
//! trip, and one full inter-tile encode.
//!
//! The measured before/after trajectory artifact comes from the
//! `kernels` binary (`cargo run --release -p medvt-bench --bin
//! kernels`); this bench keeps the same kernels visible to `cargo
//! bench` and catches gross regressions in CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medvt_encoder::transform::{forward_into, inverse_into};
use medvt_encoder::{encode_tile, EncoderConfig, Qp, SearchSpec, TileConfig};
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt_frame::{Frame, FrameKind, Rect, Resolution};
use medvt_motion::{cost, MotionVector, SearchWindow};

fn frames() -> (Frame, Frame) {
    let video = PhantomVideo::builder(BodyPart::Cardiac)
        .resolution(Resolution::new(320, 240))
        .motion(MotionPattern::Pan { dx: 1.2, dy: 0.5 })
        .seed(2026)
        .build();
    (video.render(1), video.render(0))
}

fn bench_kernels(c: &mut Criterion) {
    let (cur, reference) = frames();
    let block = Rect::new(144, 112, 16, 16);

    let mut group = c.benchmark_group("sad_w16_sweep");
    group.bench_with_input(BenchmarkId::from_parameter("fast"), &(), |b, ()| {
        b.iter(|| {
            let mut acc = 0u64;
            for dy in -8i16..=8 {
                for dx in -8i16..=8 {
                    acc = acc.wrapping_add(cost::sad(
                        cur.y(),
                        reference.y(),
                        &block,
                        MotionVector::new(dx, dy),
                    ));
                }
            }
            acc
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("reference"), &(), |b, ()| {
        b.iter(|| {
            let mut acc = 0u64;
            for dy in -8i16..=8 {
                for dx in -8i16..=8 {
                    acc = acc.wrapping_add(cost::reference::sad(
                        cur.y(),
                        reference.y(),
                        &block,
                        MotionVector::new(dx, dy),
                    ));
                }
            }
            acc
        })
    });
    group.finish();

    let input: Vec<i32> = (0..64i32).map(|i| ((i * 37) % 511) - 255).collect();
    let (mut coeffs, mut tmp, mut res) = (Vec::new(), Vec::new(), Vec::new());
    c.bench_function("dct8_round_trip_scratch", |b| {
        b.iter(|| {
            forward_into(8, &input, &mut coeffs, &mut tmp);
            inverse_into(8, &coeffs, &mut res, &mut tmp);
            res.first().copied()
        })
    });

    let tcfg = TileConfig {
        qp: Qp::new(32).expect("valid QP"),
        search: SearchSpec::Diamond,
        window: SearchWindow::W16,
    };
    let ecfg = EncoderConfig::default();
    let refs: Vec<&Frame> = vec![&reference];
    c.bench_function("tile_encode_inter_128x96", |b| {
        b.iter(|| {
            encode_tile(
                &cur,
                &refs,
                FrameKind::Predicted,
                Rect::new(64, 48, 128, 96),
                &tcfg,
                &ecfg,
            )
        })
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

//! Criterion benchmarks of the scheduling layer: Algorithm 2
//! allocation, the baseline allocator, LUT estimation and slot
//! simulation — all of which run on the 1/FPS critical path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medvt_analyze::TextureClass;
use medvt_encoder::Qp;
use medvt_frame::{FrameKind, Rect};
use medvt_motion::MotionLevel;
use medvt_mpsoc::{simulate_slot, DvfsPolicy, Platform, PowerModel};
use medvt_runtime::{DemandSource, ReplanPolicy, ServerLoop, ServerLoopConfig, SimBackend};
use medvt_sched::{allocate, baseline_allocate, LutKey, UserDemand, WorkloadLut};

const SLOT: f64 = 1.0 / 24.0;

fn users(n: usize, tiles: usize) -> Vec<UserDemand> {
    (0..n)
        .map(|u| {
            UserDemand::new(
                u,
                (0..tiles)
                    .map(|t| SLOT / 8.0 * (1.0 + 0.1 * ((u + t) % 5) as f64))
                    .collect(),
            )
        })
        .collect()
}

fn bench_allocate(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_allocate");
    for n in [8usize, 24, 64] {
        let demands = users(n, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &demands, |b, demands| {
            b.iter(|| allocate(32, SLOT, demands))
        });
    }
    group.finish();
}

fn bench_baseline_allocate(c: &mut Criterion) {
    let demands = users(24, 5);
    c.bench_function("baseline19_allocate_24users", |b| {
        b.iter(|| baseline_allocate(32, &demands))
    });
}

fn bench_lut(c: &mut Criterion) {
    let mut lut = WorkloadLut::new();
    let keys: Vec<LutKey> = (0..200)
        .map(|i| {
            LutKey::new(
                &Rect::new(0, 0, 64 + (i % 7) * 16, 64 + (i % 5) * 16),
                match i % 3 {
                    0 => TextureClass::Low,
                    1 => TextureClass::Medium,
                    _ => TextureClass::High,
                },
                if i % 2 == 0 {
                    MotionLevel::Low
                } else {
                    MotionLevel::High
                },
                Qp::new(22 + (i % 5) as u8 * 5).expect("valid"),
                "biomed",
                FrameKind::BiPredicted,
            )
        })
        .collect();
    for (i, k) in keys.iter().enumerate() {
        for s in 0..32 {
            lut.observe(*k, 1_000_000 + (i * 100 + s) as u64);
        }
    }
    c.bench_function("lut_estimate_or_model", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            lut.estimate_or_model(&keys[i])
        })
    });
}

fn bench_slot_sim(c: &mut Criterion) {
    let platform = Platform::xeon_e5_2667_quad();
    let power = PowerModel::default();
    let loads: Vec<f64> = (0..32).map(|k| SLOT * 0.03 * (k % 7) as f64).collect();
    let prev = vec![platform.fmin(); 32];
    c.bench_function("simulate_slot_32cores", |b| {
        b.iter(|| {
            simulate_slot(
                &platform,
                &power,
                DvfsPolicy::StretchToDeadline,
                &loads,
                &prev,
                SLOT,
            )
        })
    });
}

/// The complete per-slot server path as production runs it: per-GOP
/// re-placement plus backend slot execution for 24 users on 32 cores.
fn bench_server_loop(c: &mut Criterion) {
    struct Flat;
    impl DemandSource for Flat {
        fn demand_at(&self, user: usize, slot: usize) -> Vec<f64> {
            (0..10)
                .map(|t| SLOT / 80.0 * (1.0 + 0.1 * ((user + t + slot) % 5) as f64))
                .collect()
        }
    }
    let platform = Platform::xeon_e5_2667_quad();
    let admitted: Vec<usize> = (0..24).collect();
    c.bench_function("server_loop_gop_24users_32cores", |b| {
        let mut backend = SimBackend::new(platform.clone(), PowerModel::default());
        b.iter(|| {
            let mut lp = ServerLoop::new(
                &mut backend,
                ServerLoopConfig {
                    fps: 24.0,
                    slots: 8,
                    policy: DvfsPolicy::StretchToDeadline,
                    replan: ReplanPolicy::PerGop { headroom: 1.15 },
                    gop_slots: 8,
                    window_slots: None,
                },
            );
            lp.run(&Flat, &admitted, &[])
        })
    });
}

criterion_group!(
    benches,
    bench_allocate,
    bench_baseline_allocate,
    bench_lut,
    bench_slot_sim,
    bench_server_loop
);
criterion_main!(benches);

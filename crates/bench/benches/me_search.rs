//! Criterion micro-benchmarks of the motion-search algorithms — the
//! per-block complexity behind Table I's speedup rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt_frame::{Plane, Rect, Resolution};
use medvt_motion::{
    BioMedicalSearch, CostMetric, CrossSearch, DiamondSearch, FullSearch, GopPhase, HexOrientation,
    HexagonSearch, MotionLevel, MotionSearch, MotionVector, OneAtATimeSearch, SearchContext,
    SearchWindow, ThreeStepSearch, TzSearch,
};

fn planes() -> (Plane, Plane) {
    let video = PhantomVideo::builder(BodyPart::LungChest)
        .resolution(Resolution::new(320, 240))
        .motion(MotionPattern::Pan { dx: 1.5, dy: 0.5 })
        .seed(5)
        .build();
    let (cur, _, _) = video.render(4).into_planes();
    let (reference, _, _) = video.render(0).into_planes();
    (cur, reference)
}

fn bench_algorithms(c: &mut Criterion) {
    let (cur, reference) = planes();
    let block = Rect::new(144, 104, 16, 16);
    let algorithms: Vec<(&str, Box<dyn MotionSearch>)> = vec![
        ("full", Box::new(FullSearch)),
        ("three-step", Box::new(ThreeStepSearch)),
        ("diamond", Box::new(DiamondSearch)),
        ("cross", Box::new(CrossSearch)),
        ("one-at-a-time", Box::new(OneAtATimeSearch::new())),
        (
            "hexagon",
            Box::new(HexagonSearch::new(HexOrientation::Horizontal)),
        ),
        ("tz", Box::new(TzSearch::new())),
        (
            "biomed-first",
            Box::new(BioMedicalSearch::new(MotionLevel::High, GopPhase::First)),
        ),
        (
            "biomed-followup",
            Box::new(BioMedicalSearch::new(
                MotionLevel::Low,
                GopPhase::Subsequent {
                    direction: MotionVector::new(-6, -2),
                },
            )),
        ),
    ];
    let mut group = c.benchmark_group("me_search_16x16_w64");
    for (name, algo) in &algorithms {
        group.bench_with_input(BenchmarkId::from_parameter(name), algo, |b, algo| {
            b.iter(|| {
                let ctx = SearchContext::new(
                    &cur,
                    &reference,
                    block,
                    SearchWindow::W64,
                    CostMetric::Sad,
                    MotionVector::ZERO,
                );
                algo.search(&ctx)
            })
        });
    }
    group.finish();
}

fn bench_windows(c: &mut Criterion) {
    let (cur, reference) = planes();
    let block = Rect::new(144, 104, 16, 16);
    let mut group = c.benchmark_group("tz_by_window");
    for window in SearchWindow::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(window.size()),
            &window,
            |b, &window| {
                b.iter(|| {
                    let ctx = SearchContext::new(
                        &cur,
                        &reference,
                        block,
                        window,
                        CostMetric::Sad,
                        MotionVector::ZERO,
                    );
                    TzSearch::new().search(&ctx)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_windows);
criterion_main!(benches);

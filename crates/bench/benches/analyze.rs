//! Criterion benchmarks of the content analyzer: the paper requires
//! motion/texture evaluation and re-tiling to be "fast enough to avoid
//! any computational overhead" (§III-A) — these benches quantify that.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medvt_analyze::{
    analyze_tiling, measure_texture, probe_motion, AnalyzerConfig, CapacityBalancedTiler, Retiler,
    Tiling,
};
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt_frame::{Rect, Resolution};

fn frames() -> (medvt_frame::Frame, medvt_frame::Frame) {
    let video = PhantomVideo::builder(BodyPart::Brain)
        .resolution(Resolution::new(320, 240))
        .motion(MotionPattern::Pan { dx: 1.0, dy: 0.5 })
        .seed(17)
        .build();
    (video.render(0), video.render(4))
}

fn bench_texture(c: &mut Criterion) {
    let (f0, _) = frames();
    let cfg = AnalyzerConfig::default();
    let mut group = c.benchmark_group("texture_cv");
    for size in [32usize, 64, 128] {
        let rect = Rect::new(64, 48, size, size.min(160));
        group.bench_with_input(BenchmarkId::from_parameter(size), &rect, |b, rect| {
            b.iter(|| measure_texture(f0.y(), rect, &cfg))
        });
    }
    group.finish();
}

fn bench_motion_probe(c: &mut Criterion) {
    let (f0, f1) = frames();
    let cfg = AnalyzerConfig::default();
    c.bench_function("motion_probe_full_frame_tile", |b| {
        b.iter(|| probe_motion(f1.y(), f0.y(), &Rect::new(64, 48, 128, 96), &cfg))
    });
}

fn bench_retile(c: &mut Criterion) {
    let (f0, f1) = frames();
    let retiler = Retiler::new(AnalyzerConfig {
        min_tile_width: 32,
        min_tile_height: 32,
        ..Default::default()
    })
    .expect("valid config");
    c.bench_function("content_aware_retile_320x240", |b| {
        b.iter(|| retiler.retile(f1.y(), Some(f0.y())))
    });
}

fn bench_baseline_tiler(c: &mut Criterion) {
    let (f0, _) = frames();
    c.bench_function("capacity_balanced_tile_5", |b| {
        b.iter(|| CapacityBalancedTiler::new(5).tile(f0.y()))
    });
}

fn bench_analyze_tiling(c: &mut Criterion) {
    let (f0, f1) = frames();
    let cfg = AnalyzerConfig::default();
    let tiling = Tiling::uniform(f0.y().bounds(), 5, 4);
    c.bench_function("analyze_20_tiles", |b| {
        b.iter(|| analyze_tiling(f1.y(), Some(f0.y()), &tiling, &cfg))
    });
}

criterion_group!(
    benches,
    bench_texture,
    bench_motion_probe,
    bench_retile,
    bench_baseline_tiler,
    bench_analyze_tiling
);
criterion_main!(benches);

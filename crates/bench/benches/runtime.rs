//! Frame-slot throughput of the placement-aware runtime: serial
//! reference vs `ThreadPoolBackend` at 1/2/4/8 workers on a 16-tile
//! frame.
//!
//! Besides the usual bench printout, writes a JSON artifact
//! (`runtime_bench.json`, next to the other experiment artifacts) with
//! per-configuration seconds-per-frame and the speedup at 4 workers.
//! Speedups track the host's physical parallelism: on a multi-core
//! host the 4-worker pool is expected to clear 2x the serial
//! throughput; single-core hosts can only show queueing overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medvt_bench::write_artifact;
use medvt_encoder::{encode_frame, encode_frame_with, EncoderConfig, FramePlan, Qp, TileConfig};
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt_frame::{Frame, FrameKind, Resolution};
use medvt_mpsoc::{Platform, PowerModel};
use medvt_runtime::ThreadPoolBackend;
use serde::Serialize;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Debug, Serialize)]
struct ConfigResult {
    config: String,
    secs_per_frame: f64,
    frames_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct RuntimeBench {
    host_parallelism: usize,
    frame_width: usize,
    frame_height: usize,
    tiles: usize,
    results: Vec<ConfigResult>,
    speedup_at_4_workers: f64,
}

fn test_frame() -> Frame {
    PhantomVideo::builder(BodyPart::Cardiac)
        .resolution(Resolution::new(320, 240))
        .motion(MotionPattern::Pan { dx: 1.0, dy: 0.4 })
        .seed(2024)
        .build()
        .render(0)
}

fn plan_for(frame: &Frame) -> FramePlan {
    FramePlan::uniform(
        frame.y().bounds(),
        4,
        4,
        TileConfig::with_qp(Qp::new(32).expect("valid QP")),
    )
}

/// Median seconds of 5 timed runs (after one warmup).
fn measure(mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench_frame_slot_throughput(c: &mut Criterion) {
    let frame = test_frame();
    let plan = plan_for(&frame);
    let ecfg = EncoderConfig::default();

    let mut results = Vec::new();
    let serial_secs = measure(|| {
        encode_frame(&frame, &[], FrameKind::Intra, 0, &plan, &ecfg, false);
    });
    results.push(ConfigResult {
        config: "serial".to_string(),
        secs_per_frame: serial_secs,
        frames_per_sec: 1.0 / serial_secs,
    });
    let mut pool4_secs = serial_secs;
    for workers in WORKER_COUNTS {
        let backend =
            ThreadPoolBackend::with_workers(Platform::quad_core(), PowerModel::default(), workers);
        let secs = measure(|| {
            encode_frame_with(
                &frame,
                &[],
                FrameKind::Intra,
                0,
                &plan,
                &ecfg,
                &backend,
                None,
            );
        });
        if workers == 4 {
            pool4_secs = secs;
        }
        results.push(ConfigResult {
            config: format!("pool-{workers}"),
            secs_per_frame: secs,
            frames_per_sec: 1.0 / secs,
        });
    }
    for r in &results {
        println!(
            "runtime/frame_slot_16tiles/{:<8} {:>8.2} ms/frame  {:>7.1} fps",
            r.config,
            r.secs_per_frame * 1e3,
            r.frames_per_sec
        );
    }
    let speedup = serial_secs / pool4_secs;
    println!("runtime/frame_slot_16tiles speedup at 4 workers: {speedup:.2}x");
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Acceptance threshold: a 4-worker pool must clear 2x serial
    // throughput — but only where the host can physically deliver it.
    // On fewer than 4 hardware threads the pool can only exhibit
    // queueing overhead, so the check is skipped instead of spuriously
    // failing (e.g. the 1-core CI container).
    if host_parallelism >= 4 {
        assert!(
            speedup >= 2.0,
            "4-worker pool reached only {speedup:.2}x on a \
             {host_parallelism}-thread host (threshold 2.0x)"
        );
    } else {
        println!(
            "skipping 2x-at-4-workers acceptance check: host has only \
             {host_parallelism} hardware thread(s)"
        );
    }
    let artifact = RuntimeBench {
        host_parallelism,
        frame_width: 320,
        frame_height: 240,
        tiles: plan.tile_count(),
        results,
        speedup_at_4_workers: speedup,
    };
    let path = write_artifact("runtime_bench", &artifact);
    println!("artifact: {}", path.display());

    // Standard criterion entries for the two headline configurations.
    let mut group = c.benchmark_group("frame_slot_16tiles");
    group.bench_with_input(BenchmarkId::from_parameter("serial"), &(), |b, ()| {
        b.iter(|| encode_frame(&frame, &[], FrameKind::Intra, 0, &plan, &ecfg, false))
    });
    let backend = ThreadPoolBackend::with_workers(Platform::quad_core(), PowerModel::default(), 4);
    group.bench_with_input(BenchmarkId::from_parameter("pool-4"), &(), |b, ()| {
        b.iter(|| {
            encode_frame_with(
                &frame,
                &[],
                FrameKind::Intra,
                0,
                &plan,
                &ecfg,
                &backend,
                None,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_frame_slot_throughput);
criterion_main!(benches);

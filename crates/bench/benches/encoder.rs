//! Criterion benchmarks of the encoder substrate: transform/quant
//! throughput, tile encoding by QP, and the parallel-tile speedup the
//! paper's frame-level parallelization relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medvt_encoder::{
    encode_frame, encode_tile, transform, EncoderConfig, FramePlan, Qp, SearchSpec, TileConfig,
};
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt_frame::{FrameKind, Rect, Resolution};
use medvt_motion::SearchWindow;

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("dct_forward");
    for n in transform::TRANSFORM_SIZES {
        let input: Vec<i32> = (0..n * n).map(|i| (i as i32 * 7) % 255 - 127).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| transform::forward(n, input))
        });
    }
    group.finish();
}

fn bench_tile_by_qp(c: &mut Criterion) {
    let video = PhantomVideo::builder(BodyPart::Cardiac)
        .resolution(Resolution::new(192, 144))
        .motion(MotionPattern::Pan { dx: 1.0, dy: 0.0 })
        .seed(9)
        .build();
    let reference = video.render(0);
    let current = video.render(1);
    let ecfg = EncoderConfig::default();
    let mut group = c.benchmark_group("tile_encode_by_qp");
    group.sample_size(20);
    for qp in [22u8, 32, 42] {
        let tcfg = TileConfig {
            qp: Qp::new(qp).expect("valid"),
            search: SearchSpec::Diamond,
            window: SearchWindow::W16,
        };
        group.bench_with_input(BenchmarkId::from_parameter(qp), &tcfg, |b, tcfg| {
            b.iter(|| {
                encode_tile(
                    &current,
                    &[&reference],
                    FrameKind::Predicted,
                    Rect::new(48, 40, 96, 64),
                    tcfg,
                    &ecfg,
                )
            })
        });
    }
    group.finish();
}

fn bench_parallel_tiles(c: &mut Criterion) {
    let video = PhantomVideo::builder(BodyPart::LungChest)
        .resolution(Resolution::new(320, 240))
        .seed(3)
        .build();
    let frame = video.render(0);
    let ecfg = EncoderConfig::default();
    let plan = FramePlan::uniform(
        frame.y().bounds(),
        4,
        2,
        TileConfig {
            qp: Qp::new(32).expect("valid"),
            search: SearchSpec::Diamond,
            window: SearchWindow::W16,
        },
    );
    let mut group = c.benchmark_group("frame_encode_4x2");
    group.sample_size(10);
    for parallel in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if parallel { "parallel" } else { "serial" }),
            &parallel,
            |b, &parallel| {
                b.iter(|| encode_frame(&frame, &[], FrameKind::Intra, 0, &plan, &ecfg, parallel))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transform,
    bench_tile_by_qp,
    bench_parallel_tiles
);
criterion_main!(benches);

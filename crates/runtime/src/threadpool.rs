//! The real-execution backend: a persistent per-core worker pool that
//! runs tile work units where Algorithm 2 placed them.
//!
//! Execution honours placements exactly — unit `(user, thread)` runs
//! on worker `core % workers`, FIFO within each worker — while energy
//! and deadline accounting reuse the same analytical slot model as
//! [`SimBackend`], so swapping backends never changes reported
//! statistics, only whether the work physically happens.

use crate::backend::{ExecutionBackend, SlotOutcome, WorkUnit};
use crate::pool::{ExecRecord, WorkerPool};
use crate::sim::SimBackend;
use medvt_encoder::{TileExecutor, TileJob, TileOutcome};
use medvt_mpsoc::{DvfsPolicy, Platform, PowerModel};
use medvt_sched::{place_threads, UserDemand};
use std::sync::Mutex;
use std::time::Instant;

/// Executes placed work units on persistent per-core worker threads.
#[derive(Debug)]
pub struct ThreadPoolBackend {
    pool: WorkerPool,
    accounting: SimBackend,
}

impl ThreadPoolBackend {
    /// A backend with one worker per platform core.
    pub fn new(platform: Platform, power: PowerModel) -> Self {
        let workers = platform.total_cores();
        Self::with_workers(platform, power, workers)
    }

    /// A backend with an explicit worker count (e.g. fewer workers
    /// than modelled cores on a small host; core ids wrap modulo the
    /// worker count).
    pub fn with_workers(platform: Platform, power: PowerModel, workers: usize) -> Self {
        Self {
            pool: WorkerPool::new(workers),
            accounting: SimBackend::new(platform, power),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Enables/disables the per-core execution log (for tests).
    pub fn set_logging(&self, enabled: bool) {
        self.pool.set_logging(enabled);
    }

    /// Drains the execution log: which worker ran which (user, item).
    pub fn drain_log(&self) -> Vec<ExecRecord> {
        self.pool.drain_log()
    }

    /// The placement this backend computes for a set of tile costs
    /// when no explicit core assignment is given: Algorithm 2's
    /// cap-seeking `place_threads` over the worker set, treating the
    /// frame as one user and balancing total cost across workers.
    pub fn place_for_costs(&self, costs: &[f64]) -> Vec<usize> {
        let workers = self.pool.workers();
        let total: f64 = costs.iter().sum();
        if costs.is_empty() || total <= 0.0 {
            return vec![0; costs.len()];
        }
        // A "slot" sized so the summed demand asks for every worker:
        // placement then packs tiles to equalize per-worker load.
        let slot = (total / workers as f64).max(1e-12);
        let alloc = place_threads(workers, slot, &[UserDemand::new(0, costs.to_vec())]);
        let mut assignment = vec![0usize; costs.len()];
        for p in &alloc.placements {
            assignment[p.thread] = p.core;
        }
        assignment
    }
}

impl ExecutionBackend for ThreadPoolBackend {
    fn cores(&self) -> usize {
        self.accounting.cores()
    }

    fn core_speeds(&self) -> Vec<f64> {
        self.accounting.core_speeds()
    }

    fn label(&self) -> String {
        self.accounting.label()
    }

    fn executes_work(&self) -> bool {
        true
    }

    fn reset(&mut self) {
        self.accounting.reset();
    }

    fn execute_slot<'scope>(
        &mut self,
        policy: DvfsPolicy,
        slot_secs: f64,
        work: Vec<WorkUnit<'scope>>,
    ) -> SlotOutcome {
        let mut cost_units: Vec<WorkUnit<'static>> = Vec::with_capacity(work.len());
        let t0 = Instant::now();
        let mut ran_any = false;
        self.pool.scope(|s| {
            for mut unit in work {
                if let Some(job) = unit.job.take() {
                    ran_any = true;
                    s.submit(unit.core, unit.user, unit.thread, job);
                }
                cost_units.push(WorkUnit::cost_only(
                    unit.user,
                    unit.thread,
                    unit.core,
                    unit.cost_fmax_secs,
                ));
            }
        });
        let wall_secs = if ran_any {
            t0.elapsed().as_secs_f64()
        } else {
            0.0
        };
        let mut outcome = self.accounting.execute_slot(policy, slot_secs, cost_units);
        outcome.wall_secs = wall_secs;
        outcome
    }
}

/// Placement-aware tile execution for the encoder: jobs with explicit
/// core assignments run exactly there; unassigned frames get an
/// Algorithm 2 placement computed from the jobs' cost hints.
impl TileExecutor for ThreadPoolBackend {
    fn execute<'scope>(&self, jobs: Vec<TileJob<'scope>>) -> Vec<TileOutcome> {
        let n = jobs.len();
        let assignment: Vec<usize> = if jobs.iter().all(|j| j.core.is_some()) {
            jobs.iter().map(|j| j.core.expect("checked")).collect()
        } else {
            let costs: Vec<f64> = jobs.iter().map(|j| j.cost_hint).collect();
            self.place_for_costs(&costs)
        };
        let results: Vec<Mutex<Option<TileOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.pool.scope(|s| {
            for job in jobs {
                let slot = &results[job.index];
                let core = assignment[job.index];
                let run = job.run;
                s.submit(core, 0, job.index, move || {
                    *slot.lock().expect("result slot") = Some(run());
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot")
                    .expect("every tile job ran")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLOT: f64 = 1.0 / 24.0;

    #[test]
    fn accounting_matches_sim_backend_exactly() {
        let mk_units = || {
            vec![
                WorkUnit::cost_only(0, 0, 0, SLOT * 0.4),
                WorkUnit::cost_only(0, 1, 1, SLOT * 0.9),
                WorkUnit::cost_only(1, 0, 2, SLOT * 1.4),
            ]
        };
        let mut sim = SimBackend::new(Platform::quad_core(), PowerModel::default());
        let mut pool =
            ThreadPoolBackend::with_workers(Platform::quad_core(), PowerModel::default(), 2);
        for _ in 0..4 {
            let a = sim.execute_slot(DvfsPolicy::StretchToDeadline, SLOT, mk_units());
            let b = pool.execute_slot(DvfsPolicy::StretchToDeadline, SLOT, mk_units());
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn real_jobs_run_on_assigned_workers() {
        let backend =
            ThreadPoolBackend::with_workers(Platform::quad_core(), PowerModel::default(), 4);
        backend.set_logging(true);
        let mut b = backend;
        let units: Vec<WorkUnit<'_>> = (0..8)
            .map(|i| WorkUnit {
                user: 3,
                thread: i,
                core: i % 4,
                cost_fmax_secs: 1e-4,
                job: Some(Box::new(move || {
                    std::hint::black_box(i * i);
                })),
            })
            .collect();
        let out = b.execute_slot(DvfsPolicy::StretchToDeadline, SLOT, units);
        assert!(out.wall_secs >= 0.0);
        let log = b.drain_log();
        assert_eq!(log.len(), 8);
        for r in &log {
            assert_eq!(
                r.worker,
                r.item % 4,
                "thread {} on worker {}",
                r.item,
                r.worker
            );
            assert_eq!(r.user, 3);
        }
    }

    #[test]
    fn place_for_costs_balances_load() {
        let b = ThreadPoolBackend::with_workers(Platform::quad_core(), PowerModel::default(), 4);
        let costs = vec![1.0; 16];
        let assignment = b.place_for_costs(&costs);
        let mut per_worker = [0usize; 4];
        for &w in &assignment {
            assert!(w < 4);
            per_worker[w] += 1;
        }
        assert_eq!(per_worker, [4, 4, 4, 4], "uniform costs spread evenly");
    }
}

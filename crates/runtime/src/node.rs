//! A serving *node*: one `Platform`'s server loop behind a typed
//! message-passing interface.
//!
//! [`Node`] wraps a [`LoopDriver`] so that everything an admission
//! controller does to a shard — membership deltas, slot advancement,
//! report extraction — flows through one [`NodeCommand`] request /
//! [`NodeResponse`] reply seam. In-process callers dispatch commands
//! directly with [`Node::handle`]; the commands are plain data
//! (`Serialize`/`Deserialize`), so a wire protocol can bind the same
//! seam later without touching the driver. The cluster layer
//! (`medvt-cluster`) runs one `Node` per worker; single-host serving
//! (`admission::serve_online_with`) drives its shards through the same
//! commands, so both tiers exercise identical driver transitions.

use crate::backend::ExecutionBackend;
use crate::server::{DemandSource, LoopDriver, LoopReport, ServerLoopConfig, UserLoopStats};
use medvt_telemetry::{NoopRecorder, Recorder};
use serde::{Deserialize, Serialize};

/// A request to a serving node. Every variant is plain data so the
/// enum can cross a process boundary unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeCommand {
    /// Apply a membership delta at a GOP boundary (keeps the node's
    /// incremental placement engine engaged).
    UpdateMembership {
        /// Users admitted onto this node.
        add: Vec<usize>,
        /// Users leaving this node (departed or evicted).
        remove: Vec<usize>,
    },
    /// Execute `slots` frame slots against the node's demand source.
    Advance {
        /// Number of slots to run.
        slots: usize,
    },
    /// Snapshot the aggregate report so far without stopping.
    Report,
    /// Finish the run: fold telemetry into the recorder and return the
    /// final report. The node accepts no further commands.
    Stop,
}

/// A serving node's reply to one [`NodeCommand`].
#[derive(Debug, Clone, PartialEq)]
pub enum NodeResponse {
    /// The command was applied; nothing to return.
    Done,
    /// Reply to [`NodeCommand::Report`].
    Report(Box<LoopReport>),
    /// Reply to [`NodeCommand::Stop`]: the final report.
    Stopped(Box<LoopReport>),
    /// The node already stopped; the command was ignored.
    Gone,
}

impl NodeResponse {
    /// The report carried by a `Report`/`Stopped` reply, if any.
    pub fn into_report(self) -> Option<LoopReport> {
        match self {
            NodeResponse::Report(r) | NodeResponse::Stopped(r) => Some(*r),
            _ => None,
        }
    }
}

/// One serving node: a [`LoopDriver`] owning its backend (and thereby
/// its `Platform` view), addressed through [`NodeCommand`]s.
#[derive(Debug)]
pub struct Node<B: ExecutionBackend, R: Recorder = NoopRecorder> {
    driver: Option<LoopDriver<B, R>>,
}

impl<B: ExecutionBackend> Node<B> {
    /// A node with telemetry disabled, starting with an empty admitted
    /// set.
    pub fn new(backend: B, cfg: ServerLoopConfig) -> Self {
        Node::with_recorder(backend, cfg, NoopRecorder, 0)
    }
}

impl<B: ExecutionBackend, R: Recorder> Node<B, R> {
    /// A node stamping telemetry onto `track` of `recorder`.
    ///
    /// # Panics
    ///
    /// Panics when the config's `fps` or `gop_slots` is not positive.
    pub fn with_recorder(backend: B, cfg: ServerLoopConfig, recorder: R, track: u16) -> Self {
        Node {
            driver: Some(LoopDriver::with_recorder(
                backend,
                cfg,
                Vec::new(),
                Vec::new(),
                recorder,
                track,
            )),
        }
    }

    /// Dispatches one command against the node's demand source.
    /// Returns [`NodeResponse::Gone`] for every command after `Stop`.
    pub fn handle(&mut self, cmd: NodeCommand, source: &impl DemandSource) -> NodeResponse {
        let Some(driver) = self.driver.as_mut() else {
            return NodeResponse::Gone;
        };
        match cmd {
            NodeCommand::UpdateMembership { add, remove } => {
                driver.update_membership(&add, &remove);
                NodeResponse::Done
            }
            NodeCommand::Advance { slots } => {
                driver.advance(source, slots);
                NodeResponse::Done
            }
            NodeCommand::Report => NodeResponse::Report(Box::new(driver.report())),
            NodeCommand::Stop => {
                let driver = self.driver.take().expect("checked above");
                NodeResponse::Stopped(Box::new(driver.into_report()))
            }
        }
    }

    /// Whether the node still accepts commands (false after `Stop`).
    pub fn is_live(&self) -> bool {
        self.driver.is_some()
    }

    /// The next slot the node will execute (0 after `Stop`).
    pub fn slot(&self) -> usize {
        self.driver.as_ref().map_or(0, |d| d.slot())
    }

    /// Members currently on a consecutive-window-miss streak, in id
    /// order — the read-path an eviction scan needs. Local queries
    /// stay synchronous; only state *transitions* go through
    /// [`NodeCommand`]s.
    pub fn miss_streaks(&self) -> impl Iterator<Item = usize> + '_ {
        self.driver.iter().flat_map(|d| d.miss_streaks())
    }

    /// Running per-user accounting (None before the user's first
    /// scheduled slot, or after `Stop`).
    pub fn user_stats(&self, user: usize) -> Option<&UserLoopStats> {
        self.driver.as_ref().and_then(|d| d.user_stats(user))
    }

    /// Direct access to the wrapped driver (None after `Stop`) — the
    /// colocated-coordinator escape hatch for reads the command seam
    /// doesn't model.
    pub fn driver(&self) -> Option<&LoopDriver<B, R>> {
        self.driver.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ReplanPolicy;
    use crate::sim::SimBackend;
    use medvt_mpsoc::{Platform, PowerModel};

    struct Flat;
    impl DemandSource for Flat {
        fn demand_at(&self, _user: usize, _slot: usize) -> Vec<f64> {
            vec![0.01; 2]
        }
        fn steady(&self, _user: usize) -> bool {
            true
        }
    }

    fn node() -> Node<SimBackend> {
        let p = Platform::xeon_e5_2667_quad();
        let cfg = ServerLoopConfig {
            fps: 24.0,
            slots: 0,
            policy: medvt_mpsoc::DvfsPolicy::RaceToIdle,
            replan: ReplanPolicy::PerGop { headroom: 1.15 },
            gop_slots: 8,
            window_slots: Some(24),
        };
        Node::new(
            SimBackend::new(p.socket_view(0), PowerModel::default()),
            cfg,
        )
    }

    #[test]
    fn command_seam_matches_direct_driver_calls() {
        let src = Flat;
        let mut n = node();
        assert!(matches!(
            n.handle(
                NodeCommand::UpdateMembership {
                    add: vec![3, 1],
                    remove: vec![],
                },
                &src
            ),
            NodeResponse::Done
        ));
        assert!(matches!(
            n.handle(NodeCommand::Advance { slots: 16 }, &src),
            NodeResponse::Done
        ));
        assert_eq!(n.slot(), 16);

        let via_cmd = n
            .handle(NodeCommand::Report, &src)
            .into_report()
            .expect("report");

        // Reference: the same transitions applied to a bare driver.
        let p = Platform::xeon_e5_2667_quad();
        let mut d = LoopDriver::new(
            SimBackend::new(p.socket_view(0), PowerModel::default()),
            *n.driver().unwrap().config(),
            Vec::new(),
            Vec::new(),
        );
        d.update_membership(&[3, 1], &[]);
        d.advance(&src, 16);
        assert_eq!(via_cmd.modeled_only(), d.report().modeled_only());
    }

    #[test]
    fn stop_finishes_and_further_commands_bounce() {
        let src = Flat;
        let mut n = node();
        n.handle(
            NodeCommand::UpdateMembership {
                add: vec![0],
                remove: vec![],
            },
            &src,
        );
        n.handle(NodeCommand::Advance { slots: 8 }, &src);
        let report = n
            .handle(NodeCommand::Stop, &src)
            .into_report()
            .expect("final report");
        assert_eq!(report.slots, 8);
        assert!(!n.is_live());
        assert!(matches!(
            n.handle(NodeCommand::Advance { slots: 8 }, &src),
            NodeResponse::Gone
        ));
        assert!(n.user_stats(0).is_none());
    }

    #[test]
    fn commands_are_wire_shaped() {
        // Plain-data commands serialize to a stable tagged form — the
        // contract a wire protocol binds against. (The offline
        // serde_json shim has no parser; the `Deserialize` derive is
        // exercised at compile time.)
        let cmd = NodeCommand::UpdateMembership {
            add: vec![1, 2],
            remove: vec![3],
        };
        let json = serde_json::to_string(&cmd).expect("serializes");
        assert!(json.contains("UpdateMembership"), "{json}");
        assert!(json.contains("\"add\":[1,2]"), "{json}");
        assert_eq!(
            serde_json::to_string(&NodeCommand::Advance { slots: 8 }).unwrap(),
            serde_json::to_string(&NodeCommand::Advance { slots: 8 }).unwrap()
        );
    }
}

//! The analytical backend: today's slot model (extracted from
//! `core::server` / `mpsoc::simulate_slot`) behind the
//! [`ExecutionBackend`] trait.

use crate::backend::{ExecutionBackend, SlotOutcome, WorkUnit};
use medvt_mpsoc::{simulate_slot, DvfsPolicy, FreqLevel, Platform, PowerModel};

/// Prices slots analytically from work-unit costs; never runs jobs.
#[derive(Debug, Clone)]
pub struct SimBackend {
    platform: Platform,
    power: PowerModel,
    prev_freqs: Vec<FreqLevel>,
    carry: Vec<f64>,
}

impl SimBackend {
    /// Creates a backend over `platform` with `power` pricing (core
    /// classes with their own power model override it per core).
    pub fn new(platform: Platform, power: PowerModel) -> Self {
        let cores = platform.total_cores();
        let prev_freqs = platform.core_fmins();
        Self {
            platform,
            power,
            prev_freqs,
            carry: vec![0.0; cores],
        }
    }

    /// The platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Load carried into the next slot, per core (fmax-seconds).
    pub fn carry(&self) -> &[f64] {
        &self.carry
    }
}

impl ExecutionBackend for SimBackend {
    fn cores(&self) -> usize {
        self.platform.total_cores()
    }

    fn core_speeds(&self) -> Vec<f64> {
        self.platform.core_speeds()
    }

    fn label(&self) -> String {
        self.platform.name.clone()
    }

    fn reset(&mut self) {
        self.prev_freqs = self.platform.core_fmins();
        self.carry = vec![0.0; self.cores()];
    }

    fn execute_slot<'scope>(
        &mut self,
        policy: DvfsPolicy,
        slot_secs: f64,
        work: Vec<WorkUnit<'scope>>,
    ) -> SlotOutcome {
        let mut loads = self.carry.clone();
        for unit in &work {
            loads[unit.core] += unit.cost_fmax_secs;
        }
        let report = simulate_slot(
            &self.platform,
            &self.power,
            policy,
            &loads,
            &self.prev_freqs,
            slot_secs,
        );
        for (k, plan) in report.cores.iter().enumerate() {
            self.carry[k] = plan.carry_fmax_secs;
            self.prev_freqs[k] = plan.freq;
        }
        SlotOutcome {
            report,
            wall_secs: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLOT: f64 = 1.0 / 24.0;

    #[test]
    fn carry_flows_into_next_slot() {
        let mut b = SimBackend::new(Platform::quad_core(), PowerModel::default());
        let heavy = vec![WorkUnit::cost_only(0, 0, 0, SLOT * 1.5)];
        let out = b.execute_slot(DvfsPolicy::StretchToDeadline, SLOT, heavy);
        assert_eq!(out.report.deadline_misses, 1);
        assert!(b.carry()[0] > 0.0);
        // Empty next slot still executes the carried work.
        let out2 = b.execute_slot(DvfsPolicy::StretchToDeadline, SLOT, vec![]);
        assert!(out2.report.cores[0].busy_secs > 0.0);
        assert_eq!(out2.report.deadline_misses, 0);
        assert!((b.carry()[0]).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut b = SimBackend::new(Platform::quad_core(), PowerModel::default());
        b.execute_slot(
            DvfsPolicy::StretchToDeadline,
            SLOT,
            vec![WorkUnit::cost_only(0, 0, 1, SLOT * 2.0)],
        );
        assert!(b.carry()[1] > 0.0);
        b.reset();
        assert!(b.carry().iter().all(|&c| c == 0.0));
    }
}

//! The [`ExecutionBackend`] abstraction: one trait, two ways to run a
//! frame slot.
//!
//! A *slot* is one 1/FPS scheduling interval. The server loop turns
//! Algorithm 2's placements into [`WorkUnit`]s — (user, thread, core,
//! cost) tuples, optionally carrying the real tile-encoding closure —
//! and a backend executes them:
//!
//! * [`SimBackend`](crate::SimBackend) prices the slot analytically
//!   from the costs (the paper's evaluation model);
//! * [`ThreadPoolBackend`](crate::ThreadPoolBackend) additionally runs
//!   the closures on its per-core worker queues, FIFO per core, while
//!   keeping the *same* analytical energy/deadline accounting so both
//!   backends report identical statistics for identical workloads.
//!
//! Backends are stateful across slots: they own the per-core DVFS
//! operating points and the deadline-miss carry (Algorithm 2 lines
//! 21–22) from one slot to the next.

use medvt_mpsoc::{DvfsPolicy, SlotReport};

/// One placed unit of slot work: user `user`'s tile-thread `thread`
/// on core `core`, costing `cost_fmax_secs` seconds at f_max.
pub struct WorkUnit<'scope> {
    /// User the work belongs to.
    pub user: usize,
    /// Thread (tile) index within the user.
    pub thread: usize,
    /// Core assigned by the scheduler.
    pub core: usize,
    /// Estimated CPU time at f_max, seconds.
    pub cost_fmax_secs: f64,
    /// The actual work, when the caller has any (`None` for replayed
    /// profiles). Sim backends ignore it; pool backends run it on the
    /// assigned core's queue.
    pub job: Option<Box<dyn FnOnce() + Send + 'scope>>,
}

impl std::fmt::Debug for WorkUnit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkUnit")
            .field("user", &self.user)
            .field("thread", &self.thread)
            .field("core", &self.core)
            .field("cost_fmax_secs", &self.cost_fmax_secs)
            .field("has_job", &self.job.is_some())
            .finish()
    }
}

impl<'scope> WorkUnit<'scope> {
    /// A cost-only unit (profile replay).
    pub fn cost_only(user: usize, thread: usize, core: usize, cost_fmax_secs: f64) -> Self {
        Self {
            user,
            thread,
            core,
            cost_fmax_secs,
            job: None,
        }
    }
}

/// Outcome of executing one slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotOutcome {
    /// The analytical per-core accounting (energy, carry, misses) —
    /// identical across backends for identical work.
    pub report: SlotReport,
    /// Wall-clock seconds spent actually executing jobs (0 when the
    /// slot carried no real work).
    pub wall_secs: f64,
}

/// Executes scheduled slot work and carries DVFS/deadline state
/// between slots.
pub trait ExecutionBackend {
    /// Number of schedulable cores (what placements index against).
    fn cores(&self) -> usize;

    /// Per-core speed factors relative to the reference class (the
    /// normalizer speed-aware placement divides loads by). Homogeneous
    /// backends — the default — are 1.0 everywhere; platform-modelling
    /// backends report `Platform::core_speeds`.
    fn core_speeds(&self) -> Vec<f64> {
        vec![1.0; self.cores()]
    }

    /// Human-readable label for shard/aggregate reports (e.g. the
    /// modelled platform's socket-tagged name).
    fn label(&self) -> String {
        format!("{}-core backend", self.cores())
    }

    /// Whether this backend physically runs [`WorkUnit::job`]
    /// closures. Analytical backends — the default — only price costs,
    /// so callers can skip materializing jobs for them entirely.
    fn executes_work(&self) -> bool {
        false
    }

    /// Clears carried load and DVFS state (start of a fresh run).
    fn reset(&mut self);

    /// Executes one slot of placed work under `policy`.
    fn execute_slot<'scope>(
        &mut self,
        policy: DvfsPolicy,
        slot_secs: f64,
        work: Vec<WorkUnit<'scope>>,
    ) -> SlotOutcome;
}

impl<B: ExecutionBackend + ?Sized> ExecutionBackend for Box<B> {
    fn cores(&self) -> usize {
        (**self).cores()
    }

    fn core_speeds(&self) -> Vec<f64> {
        (**self).core_speeds()
    }

    fn label(&self) -> String {
        (**self).label()
    }

    fn executes_work(&self) -> bool {
        (**self).executes_work()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn execute_slot<'scope>(
        &mut self,
        policy: DvfsPolicy,
        slot_secs: f64,
        work: Vec<WorkUnit<'scope>>,
    ) -> SlotOutcome {
        (**self).execute_slot(policy, slot_secs, work)
    }
}

impl<B: ExecutionBackend + ?Sized> ExecutionBackend for &mut B {
    fn cores(&self) -> usize {
        (**self).cores()
    }

    fn core_speeds(&self) -> Vec<f64> {
        (**self).core_speeds()
    }

    fn label(&self) -> String {
        (**self).label()
    }

    fn executes_work(&self) -> bool {
        (**self).executes_work()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn execute_slot<'scope>(
        &mut self,
        policy: DvfsPolicy,
        slot_secs: f64,
        work: Vec<WorkUnit<'scope>>,
    ) -> SlotOutcome {
        (**self).execute_slot(policy, slot_secs, work)
    }
}

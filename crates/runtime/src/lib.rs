//! # medvt-runtime
//!
//! The placement-aware execution runtime for the `medvt` reproduction
//! of *"Online Efficient Bio-Medical Video Transcoding on MPSoCs
//! Through Content-Aware Workload Allocation"* (Iranfar et al., DATE
//! 2018).
//!
//! The paper's Algorithm 2 decides *which core runs which tile
//! thread*. Before this crate existed the codebase ignored its own
//! placements at execution time: the encoder spawned one unpinned
//! thread per tile per frame, and the server only *simulated* slot
//! timing. This crate closes that gap with one executor abstraction
//! serving both worlds:
//!
//! * [`WorkerPool`] — persistent per-core worker threads with FIFO
//!   queues and scoped, borrow-friendly submission;
//! * [`ExecutionBackend`] — the slot-execution trait;
//! * [`SimBackend`] — the analytical slot model (extracted from
//!   `core::server`/`mpsoc::simulate_slot`), pricing work units
//!   without running them;
//! * [`ThreadPoolBackend`] — runs real work units on the pool,
//!   honouring `sched::place_threads` assignments, with the *same*
//!   analytical accounting (also an `encoder::TileExecutor`, so
//!   `VideoEncoder::encode_clip_with` transparently encodes on it);
//! * [`ServerLoop`] — the backend-generic multi-user frame-slot loop
//!   behind `core::ServerSim`;
//! * [`LoopDriver`] — the same engine as an explicitly-stepped loop
//!   with per-user accounting and GOP-boundary membership changes, the
//!   per-socket shard loop under the `medvt-admission` online serving
//!   subsystem.
//!
//! # Mapping to the paper's Algorithm 2
//!
//! | Algorithm 2 lines | concept | here |
//! |---|---|---|
//! | 1–2 | per-user core demand, ascending-demand admission | `sched::allocate` (unchanged), driven by `core::ServerSim` |
//! | 3–15 | cap-seeking thread→core placement | the speed-aware `sched::place_threads_on` over [`ExecutionBackend::core_speeds`], re-run per GOP by [`ServerLoop`] (`ReplanPolicy::PerGop`); per-frame tile→worker placement (`ThreadPoolBackend::place_for_costs`) uses speed-blind `place_threads` over the host's (homogeneous) worker threads |
//! | 16–20 | per-core DVFS for the slot | `mpsoc::plan_core_on` (per core class) via the backend's analytical accounting |
//! | 21–22 | deadline-miss carry into the next slot | backend state: [`SimBackend`]/[`ThreadPoolBackend`] carry vectors |
//! | §III-D2 | once-per-GOP re-placement, one-second framerate windows | [`ServerLoop::run`] |
//!
//! # Example
//!
//! Encode a clip with tiles pinned to a 4-worker pool:
//!
//! ```
//! use medvt_encoder::{EncoderConfig, Qp, TileConfig, UniformController, VideoEncoder};
//! use medvt_frame::synth::{BodyPart, PhantomVideo};
//! use medvt_frame::Resolution;
//! use medvt_mpsoc::{Platform, PowerModel};
//! use medvt_runtime::ThreadPoolBackend;
//!
//! let clip = PhantomVideo::builder(BodyPart::Brain)
//!     .resolution(Resolution::new(96, 64))
//!     .seed(1)
//!     .build()
//!     .capture(3);
//! let backend = ThreadPoolBackend::with_workers(
//!     Platform::quad_core(),
//!     PowerModel::default(),
//!     4,
//! );
//! let mut controller = UniformController::new(
//!     2,
//!     2,
//!     TileConfig::with_qp(Qp::new(32).expect("valid QP")),
//! );
//! let stats = VideoEncoder::new(EncoderConfig::default())
//!     .encode_clip_with(&clip, &mut controller, &backend);
//! assert_eq!(stats.frames.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod node;
mod pool;
mod server;
mod sim;
mod threadpool;

pub use backend::{ExecutionBackend, SlotOutcome, WorkUnit};
pub use node::{Node, NodeCommand, NodeResponse};
pub use pool::{ExecRecord, PoolScope, WorkerPool};
pub use server::{
    ControllerTiming, DemandSource, LoopDriver, LoopReport, ReplanPolicy, ServerLoop,
    ServerLoopConfig, UserLoopStats, WindowTiming,
};
pub use sim::SimBackend;
pub use threadpool::ThreadPoolBackend;

//! The backend-generic multi-user server loop.
//!
//! Drives N admitted users' frame slots through any
//! [`ExecutionBackend`]: per-GOP thread re-placement (Algorithm 2
//! lines 3–15, re-run each GOP per §III-D2), per-slot work-unit
//! dispatch, deadline-miss carry-over (lines 21–22, owned by the
//! backend) and the paper's one-second framerate windows.
//!
//! `core::ServerSim` wraps this loop with profile-driven admission and
//! Table II reporting; real-execution servers feed it closures through
//! [`DemandSource::work_for`].

use crate::backend::{ExecutionBackend, WorkUnit};
use medvt_mpsoc::DvfsPolicy;
use medvt_sched::{place_threads, Placement, UserDemand};

/// Per-user, per-slot demand (and optionally real work) for the loop.
pub trait DemandSource {
    /// Per-tile f_max-second demand of `user`'s frame at `slot`.
    fn demand_at(&self, user: usize, slot: usize) -> Vec<f64>;

    /// Real work for one tile thread, when the source has any.
    /// Cost-only sources (profile replay) return `None`.
    fn work_for(
        &self,
        _user: usize,
        _slot: usize,
        _thread: usize,
    ) -> Option<Box<dyn FnOnce() + Send + '_>> {
        None
    }
}

/// When thread placements are recomputed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplanPolicy {
    /// Keep the initial placements for the whole run (baseline [19]'s
    /// static binding).
    Static,
    /// Re-run Algorithm 2's placement at every GOP boundary on the
    /// upcoming GOP's mean demand, padded by `headroom` (§III-D2).
    PerGop {
        /// Multiplier on estimated demands (> 1 keeps admission slack).
        headroom: f64,
    },
}

/// Server-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerLoopConfig {
    /// Target frames per second per user.
    pub fps: f64,
    /// Slots to run.
    pub slots: usize,
    /// DVFS policy handed to the backend.
    pub policy: DvfsPolicy,
    /// Placement refresh policy.
    pub replan: ReplanPolicy,
    /// Slots per GOP (re-placement period).
    pub gop_slots: usize,
}

/// Aggregate outcome of a server-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopReport {
    /// Total energy, joules.
    pub energy_j: f64,
    /// Slots in which at least one core carried work over.
    pub miss_slots: usize,
    /// One-second framerate windows evaluated (per active core).
    pub windows: usize,
    /// Windows ending with unfinished work — real framerate misses.
    pub window_misses: usize,
    /// Sum over slots of the number of busy cores.
    pub active_core_slots: usize,
    /// Slots run.
    pub slots: usize,
    /// Wall-clock seconds spent executing real work (pool backends).
    pub wall_secs: f64,
}

impl LoopReport {
    /// Mean busy cores per slot.
    pub fn avg_active_cores(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.active_core_slots as f64 / self.slots as f64
        }
    }

    /// Fraction of one-second windows meeting the framerate.
    pub fn on_time_rate(&self) -> f64 {
        if self.windows == 0 {
            1.0
        } else {
            1.0 - self.window_misses as f64 / self.windows as f64
        }
    }
}

/// Runs admitted users' slots through an execution backend.
#[derive(Debug)]
pub struct ServerLoop<'b, B: ExecutionBackend> {
    backend: &'b mut B,
    cfg: ServerLoopConfig,
}

impl<'b, B: ExecutionBackend> ServerLoop<'b, B> {
    /// Creates a loop over `backend`.
    ///
    /// # Panics
    ///
    /// Panics when `fps` or `gop_slots` is not positive.
    pub fn new(backend: &'b mut B, cfg: ServerLoopConfig) -> Self {
        assert!(cfg.fps > 0.0, "fps must be positive");
        assert!(cfg.gop_slots > 0, "gop must have slots");
        Self { backend, cfg }
    }

    /// Mean per-tile demand of `user` over the GOP starting at
    /// `gop_start` (what the LUT would predict for the upcoming GOP).
    fn gop_demand(&self, source: &impl DemandSource, user: usize, gop_start: usize) -> Vec<f64> {
        let mut acc: Vec<f64> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for slot in gop_start..gop_start + self.cfg.gop_slots {
            let d = source.demand_at(user, slot);
            if d.len() > acc.len() {
                acc.resize(d.len(), 0.0);
                counts.resize(d.len(), 0);
            }
            for (i, &s) in d.iter().enumerate() {
                acc[i] += s;
                counts[i] += 1;
            }
        }
        acc.iter()
            .zip(&counts)
            .map(|(&a, &c)| if c == 0 { 0.0 } else { a / c as f64 })
            .collect()
    }

    /// Runs `cfg.slots` slots for `admitted` users, starting from
    /// `initial` placements, and aggregates deadline/energy statistics.
    ///
    /// The backend is reset first, so repeated runs are independent.
    pub fn run(
        &mut self,
        source: &impl DemandSource,
        admitted: &[usize],
        initial: &[Placement],
    ) -> LoopReport {
        let cores = self.backend.cores();
        let slot_secs = 1.0 / self.cfg.fps;
        let debug = std::env::var_os("MEDVT_DEBUG_SLOTS").is_some();
        self.backend.reset();
        let mut placements: Vec<Placement> = initial.to_vec();
        let mut report = LoopReport {
            energy_j: 0.0,
            miss_slots: 0,
            windows: 0,
            window_misses: 0,
            active_core_slots: 0,
            slots: self.cfg.slots,
            wall_secs: 0.0,
        };
        let window_len = self.cfg.fps.round().max(1.0) as usize;
        let mut active_in_window = vec![false; cores];
        for slot in 0..self.cfg.slots {
            // Thread allocation happens once per GOP (paper §III-D2),
            // using that GOP's estimated per-tile demand; the static
            // policy keeps tiles bound to their initial cores.
            if let ReplanPolicy::PerGop { headroom } = self.cfg.replan {
                if slot % self.cfg.gop_slots == 0 {
                    let demands: Vec<UserDemand> = admitted
                        .iter()
                        .map(|&u| {
                            UserDemand::new(
                                u,
                                self.gop_demand(source, u, slot)
                                    .iter()
                                    .map(|s| s * headroom)
                                    .collect(),
                            )
                        })
                        .collect();
                    let placed = place_threads(cores, slot_secs, &demands);
                    if debug {
                        let mut sorted = placed.core_loads.clone();
                        sorted.sort_by(|a, b| b.total_cmp(a));
                        eprintln!(
                            "gop@{slot}: padded loads top {:?} used {} threads {}",
                            &sorted[..4.min(sorted.len())]
                                .iter()
                                .map(|l| (l / slot_secs * 100.0).round() / 100.0)
                                .collect::<Vec<_>>(),
                            placed.used_cores(),
                            placed.placements.len(),
                        );
                    }
                    placements = placed.placements;
                }
            }
            // Placement vectors cover the maximum tile count of the
            // window; frames with fewer tiles simply have no work for
            // the higher thread indices.
            let mut work: Vec<WorkUnit<'_>> = Vec::with_capacity(placements.len());
            for p in &placements {
                let demand = source.demand_at(p.user, slot);
                let cost = demand.get(p.thread).copied().unwrap_or(0.0);
                work.push(WorkUnit {
                    user: p.user,
                    thread: p.thread,
                    core: p.core,
                    cost_fmax_secs: cost,
                    job: source.work_for(p.user, slot, p.thread),
                });
            }
            let outcome = self.backend.execute_slot(self.cfg.policy, slot_secs, work);
            report.energy_j += outcome.report.energy_j;
            report.wall_secs += outcome.wall_secs;
            if outcome.report.deadline_misses > 0 {
                report.miss_slots += 1;
            }
            if debug {
                let carrying = outcome
                    .report
                    .cores
                    .iter()
                    .filter(|c| c.carry_fmax_secs > 1e-9)
                    .count();
                eprintln!(
                    "slot {slot:>3}: {} cores carrying, total carry {:.3} slots",
                    carrying,
                    outcome.report.total_carry() / slot_secs
                );
            }
            report.active_core_slots += outcome.report.active_cores();
            for (k, plan) in outcome.report.cores.iter().enumerate() {
                if plan.busy_secs > 0.0 {
                    active_in_window[k] = true;
                }
            }
            // One-second framerate check (paper §III-D2): a core misses
            // its window when work remains unfinished at the boundary.
            if (slot + 1) % window_len == 0 {
                for (k, active) in active_in_window.iter_mut().enumerate() {
                    if *active {
                        report.windows += 1;
                        if outcome.report.cores[k].carry_fmax_secs > 1e-9 {
                            report.window_misses += 1;
                        }
                    }
                    *active = false;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimBackend;
    use medvt_mpsoc::{Platform, PowerModel};

    const SLOT: f64 = 1.0 / 24.0;

    struct FlatSource {
        tiles: usize,
        secs: f64,
    }

    impl DemandSource for FlatSource {
        fn demand_at(&self, _user: usize, _slot: usize) -> Vec<f64> {
            vec![self.secs; self.tiles]
        }
    }

    fn cfg(slots: usize, replan: ReplanPolicy) -> ServerLoopConfig {
        ServerLoopConfig {
            fps: 24.0,
            slots,
            policy: DvfsPolicy::StretchToDeadline,
            replan,
            gop_slots: 8,
        }
    }

    #[test]
    fn light_load_meets_every_window() {
        let mut backend = SimBackend::new(Platform::quad_core(), PowerModel::default());
        let source = FlatSource {
            tiles: 4,
            secs: SLOT / 16.0,
        };
        let mut sl = ServerLoop::new(
            &mut backend,
            cfg(48, ReplanPolicy::PerGop { headroom: 1.1 }),
        );
        let report = sl.run(&source, &[0], &[]);
        assert_eq!(report.miss_slots, 0);
        assert_eq!(report.window_misses, 0);
        assert!(report.windows > 0);
        assert!(report.energy_j > 0.0);
        assert!((report.on_time_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn static_replan_keeps_initial_placements_loaded() {
        let mut backend = SimBackend::new(Platform::quad_core(), PowerModel::default());
        let source = FlatSource {
            tiles: 2,
            secs: SLOT / 4.0,
        };
        // Initial placements put both tiles on core 3 only.
        let initial = vec![
            Placement {
                user: 0,
                thread: 0,
                core: 3,
                secs: SLOT / 4.0,
            },
            Placement {
                user: 0,
                thread: 1,
                core: 3,
                secs: SLOT / 4.0,
            },
        ];
        let mut sl = ServerLoop::new(&mut backend, cfg(8, ReplanPolicy::Static));
        let report = sl.run(&source, &[0], &initial);
        // Exactly one core ever active.
        assert_eq!(report.active_core_slots, 8);
        assert_eq!(report.miss_slots, 0);
    }

    #[test]
    fn overload_counts_misses_and_windows() {
        let mut backend = SimBackend::new(Platform::quad_core(), PowerModel::default());
        // 4 users x 4 tiles x 0.5 slots = 8 core-slots of work on 4
        // cores: permanently overloaded.
        let source = FlatSource {
            tiles: 4,
            secs: SLOT / 2.0,
        };
        let mut sl = ServerLoop::new(
            &mut backend,
            cfg(48, ReplanPolicy::PerGop { headroom: 1.0 }),
        );
        let report = sl.run(&source, &[0, 1, 2, 3], &[]);
        assert!(report.miss_slots > 0);
        assert!(report.window_misses > 0);
        assert!(report.on_time_rate() < 1.0);
    }
}

//! The backend-generic multi-user server loop.
//!
//! Drives N admitted users' frame slots through any
//! [`ExecutionBackend`]: per-GOP thread re-placement (Algorithm 2
//! lines 3–15, re-run each GOP per §III-D2), per-slot work-unit
//! dispatch, deadline-miss carry-over (lines 21–22, owned by the
//! backend) and the paper's one-second framerate windows.
//!
//! Two entry points share one engine:
//!
//! * [`ServerLoop::run`] — the closed-membership batch run used by
//!   `core::ServerSim` (admission settled up front);
//! * [`LoopDriver`] — the explicit stepping interface behind online
//!   serving: an admission controller advances the loop GOP by GOP,
//!   reads the per-user accounting ([`UserLoopStats`]) and swaps the
//!   admitted set at GOP boundaries with
//!   [`LoopDriver::set_membership`]. [`ServerLoop::run_with_hook`]
//!   packages the same contract as a per-boundary callback for
//!   single-shard use.
//!
//! `core::ServerSim` wraps this loop with profile-driven admission and
//! Table II reporting; real-execution servers feed it closures through
//! [`DemandSource::work_for`].

use crate::backend::{ExecutionBackend, WorkUnit};
use medvt_mpsoc::DvfsPolicy;
use medvt_sched::{place_threads_on, IncrementalPlacer, Placement, UserDemand};
use medvt_telemetry::{CounterId, Event, EventKind, HistId, Metrics, NoopRecorder, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Per-user, per-slot demand (and optionally real work) for the loop.
pub trait DemandSource {
    /// Per-tile f_max-second demand of `user`'s frame at `slot`.
    fn demand_at(&self, user: usize, slot: usize) -> Vec<f64>;

    /// Real work for one tile thread, when the source has any.
    /// Cost-only sources (profile replay) return `None`.
    fn work_for(
        &self,
        _user: usize,
        _slot: usize,
        _thread: usize,
    ) -> Option<Box<dyn FnOnce() + Send + '_>> {
        None
    }

    /// True when `user`'s demand never varies across slots — a promise
    /// that `demand_at(user, s)` returns the identical vector for
    /// every `s`. The incremental control plane then skips the per-GOP
    /// demand recomputation for the user entirely (the O(1)
    /// steady-state path). Purely an optimization hint: sources with
    /// per-slot variation (video profiles) keep the default `false`
    /// and are re-estimated each boundary, which the placer still
    /// no-ops when the estimate comes back bitwise unchanged.
    fn steady(&self, _user: usize) -> bool {
        false
    }
}

/// Control-plane cost accounting: what the *controller* (placement +
/// queue machinery) spent, as opposed to what the encode work cost.
/// All-ns fields are wall-clock and therefore excluded from
/// cross-backend bit-parity comparisons ([`LoopReport::modeled_only`]);
/// the counters are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ControllerTiming {
    /// GOP boundaries observed (replan opportunities).
    pub boundaries: usize,
    /// Boundaries at which placements were actually recomputed.
    pub replans: usize,
    /// Wall nanoseconds spent computing placements.
    pub placement_ns: u64,
    /// Wall nanoseconds spent on queue/admission bookkeeping (filled
    /// by the admission layer; always 0 at the loop-driver level).
    pub queue_ns: u64,
    /// Admission-side decisions made: every queued request considered
    /// plus every depart/abandon/evict processed (filled by the
    /// admission layer).
    pub decisions: u64,
}

impl ControllerTiming {
    /// The timing view over a telemetry [`Metrics`] registry — the
    /// counters and histogram sums the loop/admission layers maintain.
    /// Sums are exact (histograms keep them alongside the buckets), so
    /// this reproduces the pre-telemetry direct accumulation bit for
    /// bit and the serialized report schema is unchanged.
    pub fn from_metrics(m: &Metrics) -> Self {
        ControllerTiming {
            boundaries: m.counter(CounterId::Boundaries) as usize,
            replans: m.counter(CounterId::Replans) as usize,
            placement_ns: m.hist(HistId::PlacementNs).sum(),
            queue_ns: m.hist(HistId::BoundaryNs).sum(),
            decisions: m.counter(CounterId::Decisions),
        }
    }

    /// Field-wise accumulation (aggregating shards into a serve-level
    /// total).
    pub fn absorb(&mut self, other: &ControllerTiming) {
        self.boundaries += other.boundaries;
        self.replans += other.replans;
        self.placement_ns += other.placement_ns;
        self.queue_ns += other.queue_ns;
        self.decisions += other.decisions;
    }

    /// Total controller wall nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.placement_ns + self.queue_ns
    }

    /// Decisions per second of controller time; `None` when no time
    /// was measured.
    pub fn decisions_per_sec(&self) -> Option<f64> {
        let ns = self.total_ns();
        if ns == 0 {
            None
        } else {
            Some(self.decisions as f64 / (ns as f64 * 1e-9))
        }
    }

    /// Copy with the wall-clock nanosecond fields zeroed, keeping the
    /// deterministic counters — the backend-independent part.
    pub fn modeled_only(&self) -> Self {
        Self {
            placement_ns: 0,
            queue_ns: 0,
            ..*self
        }
    }
}

/// When thread placements are recomputed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplanPolicy {
    /// Keep the initial placements for the whole run (baseline \[19\]'s
    /// static binding). Membership changes still force a one-off
    /// re-placement — stale placements would keep running departed
    /// users.
    Static,
    /// Re-run Algorithm 2's placement at every GOP boundary on the
    /// upcoming GOP's mean demand, padded by `headroom` (§III-D2).
    PerGop {
        /// Multiplier on estimated demands (> 1 keeps admission slack).
        headroom: f64,
    },
}

impl ReplanPolicy {
    fn headroom(&self) -> f64 {
        match self {
            ReplanPolicy::Static => 1.0,
            ReplanPolicy::PerGop { headroom } => *headroom,
        }
    }
}

/// Server-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerLoopConfig {
    /// Target frames per second per user.
    pub fps: f64,
    /// Slots to run.
    pub slots: usize,
    /// DVFS policy handed to the backend.
    pub policy: DvfsPolicy,
    /// Placement refresh policy.
    pub replan: ReplanPolicy,
    /// Slots per GOP (re-placement period, and the boundary at which
    /// online membership changes take effect).
    pub gop_slots: usize,
    /// Deadline-window length in slots; `None` derives the paper's
    /// one-second window from `fps`. Deadline classes with tighter
    /// service-level checks can shorten it.
    pub window_slots: Option<usize>,
}

impl ServerLoopConfig {
    /// The deadline-window length in slots.
    pub fn window_len(&self) -> usize {
        self.window_slots
            .unwrap_or(self.fps.round().max(1.0) as usize)
            .max(1)
    }
}

/// Per-user accounting over a run — what an admission controller
/// observes to evict under sustained deadline misses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UserLoopStats {
    /// User identifier.
    pub user: usize,
    /// Energy attributed to this user, joules: each core's slot energy
    /// split across that core's users proportional to submitted cost.
    /// The split is approximate at carry boundaries — work carried
    /// from an earlier slot is charged to whoever submits on that core
    /// in the slot that drains it (shared-core fate, like window
    /// misses), and stays unattributed only when nothing is submitted
    /// there at all.
    pub energy_j: f64,
    /// Deadline windows in which the user had work scheduled.
    pub windows: usize,
    /// Of those, windows where a core running this user's threads
    /// ended with unfinished work (shared-core fate: co-located users
    /// miss together).
    pub window_misses: usize,
    /// Current run of consecutively missed windows (reset by an
    /// on-time window) — the sustained-miss signal eviction keys on.
    pub consecutive_window_misses: usize,
    /// Slots in which the user had positive demand.
    pub active_slots: usize,
}

/// Measured-vs-modeled timing of one deadline window — the
/// validation quantity behind live serving (does the analytical model
/// the placement math trusts predict real execution?).
///
/// `wall_secs` is real elapsed time executing submitted jobs (0.0 on
/// analytical backends, which never run work); `modeled_secs` sums the
/// per-slot *makespans* the slot model predicts — the busiest core's
/// planned busy time each slot, i.e. how long the window's work takes
/// when every core runs in parallel at its planned frequency. The two
/// differ by the host-vs-reference speed factor; their *ratio* should
/// hold steady across windows when the model tracks reality.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WindowTiming {
    /// Exclusive end slot of the window (a full window covers
    /// `end_slot - window_len .. end_slot`; a trailing partial window
    /// ends wherever the run stopped).
    pub end_slot: usize,
    /// Wall-clock seconds spent executing real jobs in the window.
    pub wall_secs: f64,
    /// Modeled window makespan: per-slot maximum planned core busy
    /// time, summed over the window's slots.
    pub modeled_secs: f64,
}

impl WindowTiming {
    /// `wall_secs / modeled_secs`; `None` when the window modeled no
    /// busy time (nothing scheduled) or ran no real work.
    pub fn ratio(&self) -> Option<f64> {
        Self::ratio_from(self.wall_secs, self.modeled_secs)
    }

    /// (total measured wall, total modeled makespan) over `times`.
    pub fn totals(times: &[WindowTiming]) -> (f64, f64) {
        times.iter().fold((0.0, 0.0), |(wall, modeled), w| {
            (wall + w.wall_secs, modeled + w.modeled_secs)
        })
    }

    /// Aggregate measured/modeled ratio over `times` — the single
    /// definition every report-level ratio delegates to.
    pub fn aggregate_ratio(times: &[WindowTiming]) -> Option<f64> {
        let (measured, modeled) = Self::totals(times);
        Self::ratio_from(measured, modeled)
    }

    /// The shared guard: a ratio exists only when the model priced
    /// busy time *and* real work was executed.
    pub fn ratio_from(measured: f64, modeled: f64) -> Option<f64> {
        if modeled > 0.0 && measured > 0.0 {
            Some(measured / modeled)
        } else {
            None
        }
    }
}

/// Aggregate outcome of a server-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    /// Total energy, joules.
    pub energy_j: f64,
    /// Slots in which at least one core carried work over.
    pub miss_slots: usize,
    /// One-second framerate windows evaluated (per active core).
    pub windows: usize,
    /// Windows ending with unfinished work — real framerate misses.
    pub window_misses: usize,
    /// Sum over slots of the number of busy cores.
    pub active_core_slots: usize,
    /// Slots run.
    pub slots: usize,
    /// Wall-clock seconds spent executing real work (pool backends).
    pub wall_secs: f64,
    /// Per-user accounting, sorted by user id.
    pub users: Vec<UserLoopStats>,
    /// Measured vs. modeled time of every deadline window, in window
    /// order — including a trailing partial window when the run ended
    /// (or was observed) mid-window, so the totals reconcile with
    /// `wall_secs` on any horizon.
    pub window_times: Vec<WindowTiming>,
    /// Control-plane overhead: replan counts and wall time spent on
    /// placement decisions.
    pub controller: ControllerTiming,
}

impl LoopReport {
    fn empty() -> Self {
        Self {
            energy_j: 0.0,
            miss_slots: 0,
            windows: 0,
            window_misses: 0,
            active_core_slots: 0,
            slots: 0,
            wall_secs: 0.0,
            users: Vec::new(),
            window_times: Vec::new(),
            controller: ControllerTiming::default(),
        }
    }

    /// Mean busy cores per slot; 0.0 (not NaN) on an empty run.
    pub fn avg_active_cores(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.active_core_slots as f64 / self.slots as f64
        }
    }

    /// Fraction of one-second windows meeting the framerate; 0.0 (not
    /// NaN, and not a vacuous 1.0) on a run that evaluated no windows.
    pub fn on_time_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            1.0 - self.window_misses as f64 / self.windows as f64
        }
    }

    /// The accounting row for `user`, if it ever had work.
    pub fn user(&self, user: usize) -> Option<&UserLoopStats> {
        self.users
            .binary_search_by_key(&user, |u| u.user)
            .ok()
            .map(|i| &self.users[i])
    }

    /// Total measured wall seconds over completed deadline windows.
    pub fn measured_window_secs(&self) -> f64 {
        WindowTiming::totals(&self.window_times).0
    }

    /// Total modeled makespan seconds over completed deadline windows.
    pub fn modeled_window_secs(&self) -> f64 {
        WindowTiming::totals(&self.window_times).1
    }

    /// Overall measured/modeled window-time ratio; `None` when the run
    /// modeled no busy time or executed no real work.
    pub fn window_time_ratio(&self) -> Option<f64> {
        WindowTiming::aggregate_ratio(&self.window_times)
    }

    /// Copy with every wall-clock measurement zeroed, leaving exactly
    /// the statistics the analytical model produces — the fields that
    /// must match bit for bit across execution backends running
    /// identical work.
    pub fn modeled_only(&self) -> Self {
        let mut r = self.clone();
        r.wall_secs = 0.0;
        for w in &mut r.window_times {
            w.wall_secs = 0.0;
        }
        r.controller = r.controller.modeled_only();
        r
    }
}

/// An in-flight server-loop run with explicit stepping — the engine
/// under [`ServerLoop`] and the per-socket shard loop the admission
/// subsystem drives in lockstep.
///
/// The driver owns its backend (`&mut B` also implements
/// [`ExecutionBackend`], so borrowing callers pass a reborrow) and
/// carries all cross-slot state: placements, the deadline-window
/// bookkeeping and the per-user accounting.
///
/// Telemetry: the driver is generic over a
/// [`Recorder`](medvt_telemetry::Recorder) (default
/// [`NoopRecorder`] — zero cost, statically dispatched away). Cheap
/// counters/histograms are always maintained in a local [`Metrics`]
/// registry ([`LoopDriver::meter`]); typed events (GOP boundary,
/// replan, per-core slot activity) are emitted only when
/// `R::ENABLED`, and the meter is folded into the recorder by
/// [`LoopDriver::into_report`].
#[derive(Debug)]
pub struct LoopDriver<B: ExecutionBackend, R: Recorder = NoopRecorder> {
    backend: B,
    recorder: R,
    /// Telemetry track id events are stamped with (shard index under
    /// sharded serving; 0 for standalone drivers).
    track: u16,
    cfg: ServerLoopConfig,
    /// Per-core speed factors from the backend — placement normalizes
    /// loads with these so heterogeneous cores balance finish times.
    speeds: Vec<f64>,
    /// Whether the backend runs jobs; analytical backends skip the
    /// per-unit closure materialization entirely.
    executes_work: bool,
    admitted: Vec<usize>,
    placements: Vec<Placement>,
    replan_pending: bool,
    /// Delta-maintained placement engine — engaged by
    /// [`LoopDriver::update_membership`]; `None` runs the legacy
    /// from-scratch replan.
    engine: Option<IncrementalPlacer>,
    /// Users added since the last engine refresh.
    pending_add: Vec<usize>,
    /// Users removed since the last engine refresh.
    pending_remove: Vec<usize>,
    /// Members whose demand may vary per slot (`!source.steady(u)`):
    /// re-estimated at every boundary; steady members are skipped —
    /// the O(1) path.
    nonsteady: BTreeSet<usize>,
    /// Members currently on a consecutive-window-miss streak — lets
    /// eviction scans skip users that are on time.
    miss_streaks: BTreeSet<usize>,
    meter: Metrics,
    slot: usize,
    window_len: usize,
    active_in_window: Vec<bool>,
    window_user_cores: BTreeMap<usize, BTreeSet<usize>>,
    users: BTreeMap<usize, UserLoopStats>,
    energy_j: f64,
    miss_slots: usize,
    windows: usize,
    window_misses: usize,
    active_core_slots: usize,
    wall_secs: f64,
    window_wall_acc: f64,
    window_modeled_acc: f64,
    window_times: Vec<WindowTiming>,
    debug: bool,
}

impl<B: ExecutionBackend> LoopDriver<B> {
    /// Starts a run: resets `backend` and installs the initial
    /// membership and placements. Telemetry is disabled
    /// ([`NoopRecorder`]); use [`LoopDriver::with_recorder`] to attach
    /// a flight recorder.
    ///
    /// # Panics
    ///
    /// Panics when `fps` or `gop_slots` is not positive.
    pub fn new(
        backend: B,
        cfg: ServerLoopConfig,
        admitted: Vec<usize>,
        initial: Vec<Placement>,
    ) -> Self {
        LoopDriver::with_recorder(backend, cfg, admitted, initial, NoopRecorder, 0)
    }
}

impl<B: ExecutionBackend, R: Recorder> LoopDriver<B, R> {
    /// Like [`LoopDriver::new`], with an explicit telemetry recorder
    /// and the track id its events are stamped with (`&FlightRecorder`
    /// is a `Copy` recorder many drivers can share).
    ///
    /// # Panics
    ///
    /// Panics when `fps` or `gop_slots` is not positive.
    pub fn with_recorder(
        mut backend: B,
        cfg: ServerLoopConfig,
        admitted: Vec<usize>,
        initial: Vec<Placement>,
        recorder: R,
        track: u16,
    ) -> Self {
        assert!(cfg.fps > 0.0, "fps must be positive");
        assert!(cfg.gop_slots > 0, "gop must have slots");
        backend.reset();
        let cores = backend.cores();
        let speeds = backend.core_speeds();
        let executes_work = backend.executes_work();
        assert_eq!(speeds.len(), cores, "one speed factor per backend core");
        Self {
            backend,
            recorder,
            track,
            cfg,
            speeds,
            executes_work,
            admitted,
            placements: initial,
            replan_pending: false,
            engine: None,
            pending_add: Vec::new(),
            pending_remove: Vec::new(),
            nonsteady: BTreeSet::new(),
            miss_streaks: BTreeSet::new(),
            meter: Metrics::new(),
            slot: 0,
            window_len: cfg.window_len(),
            active_in_window: vec![false; cores],
            window_user_cores: BTreeMap::new(),
            users: BTreeMap::new(),
            energy_j: 0.0,
            miss_slots: 0,
            windows: 0,
            window_misses: 0,
            active_core_slots: 0,
            wall_secs: 0.0,
            window_wall_acc: 0.0,
            window_modeled_acc: 0.0,
            window_times: Vec::new(),
            debug: std::env::var_os("MEDVT_DEBUG_SLOTS").is_some(),
        }
    }

    /// The next slot to execute.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Currently admitted users.
    pub fn admitted(&self) -> &[usize] {
        &self.admitted
    }

    /// The loop configuration.
    pub fn config(&self) -> &ServerLoopConfig {
        &self.cfg
    }

    /// Running per-user accounting for `user` (None before its first
    /// scheduled slot).
    pub fn user_stats(&self, user: usize) -> Option<&UserLoopStats> {
        self.users.get(&user)
    }

    /// Replaces the admitted set. Placements are recomputed on the
    /// next executed slot (under any [`ReplanPolicy`] — stale
    /// placements would keep running departed users). Intended for GOP
    /// boundaries, the paper's re-allocation points.
    ///
    /// Reverts the driver to the legacy from-scratch replan path; use
    /// [`LoopDriver::update_membership`] to keep the incremental
    /// engine engaged.
    pub fn set_membership(&mut self, admitted: Vec<usize>) {
        self.admitted = admitted;
        self.engine = None;
        self.pending_add.clear();
        self.pending_remove.clear();
        self.nonsteady.clear();
        self.replan_pending = true;
    }

    /// Applies a membership *delta*, engaging the incremental
    /// placement engine: unchanged-membership GOP boundaries reuse the
    /// previous placement (O(1) when every member is
    /// [`DemandSource::steady`], one no-op demand re-estimate per
    /// non-steady member otherwise), and changed boundaries replay
    /// only the placement suffix the delta disturbs.
    ///
    /// The resulting placements are bitwise-identical to
    /// [`set_membership`](Self::set_membership) with the same final
    /// id-sorted member set — property-tested in `medvt-sched` and
    /// regression-pinned against the reference controller in
    /// `medvt-admission`.
    pub fn update_membership(&mut self, add: &[usize], remove: &[usize]) {
        if self.engine.is_none() {
            // First delta: seed the engine with the current members so
            // it takes over exactly where the legacy path left off.
            self.engine = Some(IncrementalPlacer::new(&self.speeds, 1.0 / self.cfg.fps));
            self.admitted.sort_unstable();
            self.pending_add.extend(self.admitted.iter().copied());
        }
        for &u in remove {
            if let Ok(i) = self.admitted.binary_search(&u) {
                self.admitted.remove(i);
            }
            self.pending_remove.push(u);
            self.nonsteady.remove(&u);
            self.miss_streaks.remove(&u);
        }
        for &u in add {
            if let Err(i) = self.admitted.binary_search(&u) {
                self.admitted.insert(i, u);
            }
            self.pending_add.push(u);
        }
        if !add.is_empty() || !remove.is_empty() {
            self.replan_pending = true;
        }
    }

    /// Members currently on a consecutive-window-miss streak, in id
    /// order — the candidates an eviction scan needs to look at.
    pub fn miss_streaks(&self) -> impl Iterator<Item = usize> + '_ {
        self.miss_streaks.iter().copied()
    }

    /// Control-plane cost so far (a view over the telemetry meters).
    pub fn controller_timing(&self) -> ControllerTiming {
        ControllerTiming::from_metrics(&self.meter)
    }

    /// The driver-local telemetry registry: boundary/replan counters,
    /// placement-latency and window-ratio histograms. Fold it into a
    /// central registry with [`Metrics::absorb`] (done automatically
    /// against the recorder by [`LoopDriver::into_report`]).
    pub fn meter(&self) -> &Metrics {
        &self.meter
    }

    /// Runs `n` slots.
    pub fn advance(&mut self, source: &impl DemandSource, n: usize) {
        for _ in 0..n {
            self.step(source);
        }
    }

    /// Snapshot of the aggregate report so far.
    ///
    /// Window timing includes the trailing partial window when the
    /// run stopped (or is being observed) mid-window — otherwise its
    /// measured/modeled seconds would silently vanish from the ratios
    /// whenever the horizon is not a multiple of the window length.
    pub fn report(&self) -> LoopReport {
        let mut window_times = self.window_times.clone();
        if self.window_wall_acc > 0.0 || self.window_modeled_acc > 0.0 {
            window_times.push(WindowTiming {
                end_slot: self.slot,
                wall_secs: self.window_wall_acc,
                modeled_secs: self.window_modeled_acc,
            });
        }
        LoopReport {
            energy_j: self.energy_j,
            miss_slots: self.miss_slots,
            windows: self.windows,
            window_misses: self.window_misses,
            active_core_slots: self.active_core_slots,
            slots: self.slot,
            wall_secs: self.wall_secs,
            users: self.users.values().copied().collect(),
            window_times,
            controller: ControllerTiming::from_metrics(&self.meter),
        }
    }

    /// Finishes the run, returning the report. The driver's meter is
    /// folded into its recorder ([`Recorder::absorb`]; no-op when
    /// telemetry is disabled).
    pub fn into_report(self) -> LoopReport {
        self.recorder.absorb(&self.meter);
        self.report()
    }

    /// Mean per-tile demand of `user` over the GOP starting at
    /// `gop_start` (what the LUT would predict for the upcoming GOP).
    fn gop_demand(
        source: &impl DemandSource,
        gop_slots: usize,
        user: usize,
        gop_start: usize,
    ) -> Vec<f64> {
        let mut acc: Vec<f64> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for slot in gop_start..gop_start + gop_slots {
            let d = source.demand_at(user, slot);
            if d.len() > acc.len() {
                acc.resize(d.len(), 0.0);
                counts.resize(d.len(), 0);
            }
            for (i, &s) in d.iter().enumerate() {
                acc[i] += s;
                counts[i] += 1;
            }
        }
        acc.iter()
            .zip(&counts)
            .map(|(&a, &c)| if c == 0 { 0.0 } else { a / c as f64 })
            .collect()
    }

    /// One user's headroom-padded demand estimate for the GOP starting
    /// at `gop_start`.
    fn padded_demand(
        source: &impl DemandSource,
        gop_slots: usize,
        headroom: f64,
        user: usize,
        gop_start: usize,
    ) -> UserDemand {
        UserDemand::new(
            user,
            Self::gop_demand(source, gop_slots, user, gop_start)
                .iter()
                .map(|s| s * headroom)
                .collect(),
        )
    }

    /// Applies pending membership deltas and re-estimates non-steady
    /// members' demands, then refreshes the incremental engine.
    /// Returns true when placements were recomputed.
    fn refresh_engine(&mut self, source: &impl DemandSource) -> bool {
        let headroom = self.cfg.replan.headroom();
        let gop_slots = self.cfg.gop_slots;
        let slot = self.slot;
        let removes = std::mem::take(&mut self.pending_remove);
        let adds = std::mem::take(&mut self.pending_add);
        let mut updates: Vec<UserDemand> = Vec::with_capacity(adds.len());
        let added: BTreeSet<usize> = adds.iter().copied().collect();
        for &u in &added {
            updates.push(Self::padded_demand(source, gop_slots, headroom, u, slot));
            if !source.steady(u) {
                self.nonsteady.insert(u);
            }
        }
        for &u in &self.nonsteady {
            if !added.contains(&u) {
                updates.push(Self::padded_demand(source, gop_slots, headroom, u, slot));
            }
        }
        let engine = self.engine.as_mut().expect("engine mode");
        for u in removes {
            engine.remove_user(u);
        }
        for d in updates {
            engine.set_user(d);
        }
        if engine.refresh() {
            self.placements = engine.allocation().placements.clone();
            true
        } else {
            false
        }
    }

    fn replan(&mut self, source: &impl DemandSource, slot_secs: f64) {
        let headroom = self.cfg.replan.headroom();
        let gop_slots = self.cfg.gop_slots;
        let demands: Vec<UserDemand> = self
            .admitted
            .iter()
            .map(|&u| Self::padded_demand(source, gop_slots, headroom, u, self.slot))
            .collect();
        let placed = place_threads_on(&self.speeds, slot_secs, &demands);
        if self.debug {
            let mut sorted = placed.core_loads.clone();
            sorted.sort_by(|a, b| b.total_cmp(a));
            eprintln!(
                "gop@{}: padded loads top {:?} used {} threads {}",
                self.slot,
                &sorted[..4.min(sorted.len())]
                    .iter()
                    .map(|l| (l / slot_secs * 100.0).round() / 100.0)
                    .collect::<Vec<_>>(),
                placed.used_cores(),
                placed.placements.len(),
            );
        }
        self.placements = placed.placements;
    }

    /// Emits the replan event (callers gate on `R::ENABLED`).
    fn record_replan(&self) {
        self.recorder.record(Event::new(
            self.track,
            self.slot as u32,
            EventKind::Replan {
                users: self.admitted.len() as u32,
            },
        ));
    }

    /// Executes one slot: thread allocation once per GOP (paper
    /// §III-D2) or on a pending membership change, work-unit dispatch
    /// through the backend, then deadline/energy accounting.
    pub fn step(&mut self, source: &impl DemandSource) {
        let slot_secs = 1.0 / self.cfg.fps;
        let gop_boundary = self.slot.is_multiple_of(self.cfg.gop_slots);
        if gop_boundary {
            self.meter.add(CounterId::Boundaries, 1);
            if R::ENABLED {
                self.recorder.record(Event::new(
                    self.track,
                    self.slot as u32,
                    EventKind::GopBoundary,
                ));
            }
        }
        if self.engine.is_some() {
            // Incremental path: every boundary visits the engine, but
            // unchanged members make the visit a no-op refresh.
            if gop_boundary || self.replan_pending {
                let t0 = Instant::now();
                let replanned = self.refresh_engine(source);
                self.meter
                    .observe(HistId::PlacementNs, t0.elapsed().as_nanos() as u64);
                if replanned {
                    self.meter.add(CounterId::Replans, 1);
                    if R::ENABLED {
                        self.record_replan();
                    }
                }
                self.replan_pending = false;
            }
        } else {
            let periodic = matches!(self.cfg.replan, ReplanPolicy::PerGop { .. }) && gop_boundary;
            if periodic || self.replan_pending {
                let t0 = Instant::now();
                self.replan(source, slot_secs);
                self.meter
                    .observe(HistId::PlacementNs, t0.elapsed().as_nanos() as u64);
                self.meter.add(CounterId::Replans, 1);
                if R::ENABLED {
                    self.record_replan();
                }
                self.replan_pending = false;
            }
        }
        // Placement vectors cover the maximum tile count of the
        // window; frames with fewer tiles simply have no work for
        // the higher thread indices.
        let mut work: Vec<WorkUnit<'_>> = Vec::with_capacity(self.placements.len());
        // (core → submitted (user, cost)) for energy attribution.
        let mut submitted: BTreeMap<usize, Vec<(usize, f64)>> = BTreeMap::new();
        let mut active_users: BTreeSet<usize> = BTreeSet::new();
        for p in &self.placements {
            let demand = source.demand_at(p.user, self.slot);
            let cost = demand.get(p.thread).copied().unwrap_or(0.0);
            if cost > 0.0 {
                submitted.entry(p.core).or_default().push((p.user, cost));
                active_users.insert(p.user);
                self.window_user_cores
                    .entry(p.user)
                    .or_default()
                    .insert(p.core);
            }
            // Jobs are only materialized for backends that run them;
            // analytical backends price the cost and would drop the
            // closure unexecuted.
            let job = if self.executes_work {
                source.work_for(p.user, self.slot, p.thread)
            } else {
                None
            };
            work.push(WorkUnit {
                user: p.user,
                thread: p.thread,
                core: p.core,
                cost_fmax_secs: cost,
                job,
            });
        }
        let outcome = self.backend.execute_slot(self.cfg.policy, slot_secs, work);
        self.meter.add(CounterId::SlotsExecuted, 1);
        if outcome.report.transition_bound_cores > 0 {
            self.meter.add(
                CounterId::TransitionStalls,
                outcome.report.transition_bound_cores as u64,
            );
        }
        if R::ENABLED {
            medvt_mpsoc::record_slot_events(
                &self.recorder,
                self.track,
                self.slot as u32,
                &outcome.report,
            );
        }
        self.energy_j += outcome.report.energy_j;
        self.wall_secs += outcome.wall_secs;
        // Window timing: real execution time vs. the slot model's
        // makespan (the busiest core's planned busy time — how long
        // the slot's work takes with all cores in parallel).
        self.window_wall_acc += outcome.wall_secs;
        self.window_modeled_acc += outcome
            .report
            .cores
            .iter()
            .map(|c| c.busy_secs)
            .fold(0.0, f64::max);
        if outcome.report.deadline_misses > 0 {
            self.miss_slots += 1;
        }
        if self.debug {
            let carrying = outcome
                .report
                .cores
                .iter()
                .filter(|c| c.carry_fmax_secs > 1e-9)
                .count();
            eprintln!(
                "slot {:>3}: {} cores carrying, total carry {:.3} slots",
                self.slot,
                carrying,
                outcome.report.total_carry() / slot_secs
            );
        }
        self.active_core_slots += outcome.report.active_cores();
        for (k, plan) in outcome.report.cores.iter().enumerate() {
            if plan.busy_secs > 0.0 {
                self.active_in_window[k] = true;
            }
        }
        // Per-user accounting: active slots, and each core's slot
        // energy split proportional to the users' submitted cost.
        for &u in &active_users {
            let stats = self.users.entry(u).or_insert(UserLoopStats {
                user: u,
                ..Default::default()
            });
            stats.active_slots += 1;
        }
        for (&core, costs) in &submitted {
            let total: f64 = costs.iter().map(|(_, c)| c).sum();
            if total <= 0.0 {
                continue;
            }
            let core_energy = outcome.report.core_energy_j[core];
            for &(u, cost) in costs {
                if let Some(stats) = self.users.get_mut(&u) {
                    stats.energy_j += core_energy * cost / total;
                }
            }
        }
        // One-second framerate check (paper §III-D2): a core misses
        // its window when work remains unfinished at the boundary;
        // users sharing the core share its fate.
        if (self.slot + 1).is_multiple_of(self.window_len) {
            for (k, active) in self.active_in_window.iter_mut().enumerate() {
                if *active {
                    self.windows += 1;
                    if outcome.report.cores[k].carry_fmax_secs > 1e-9 {
                        self.window_misses += 1;
                    }
                }
                *active = false;
            }
            self.window_times.push(WindowTiming {
                end_slot: self.slot + 1,
                wall_secs: self.window_wall_acc,
                modeled_secs: self.window_modeled_acc,
            });
            if let Some(ratio) =
                WindowTiming::ratio_from(self.window_wall_acc, self.window_modeled_acc)
            {
                self.meter
                    .observe(HistId::WindowRatioPpm, (ratio * 1e6).round() as u64);
            }
            self.window_wall_acc = 0.0;
            self.window_modeled_acc = 0.0;
            for (&u, cores) in &self.window_user_cores {
                let Some(stats) = self.users.get_mut(&u) else {
                    continue;
                };
                stats.windows += 1;
                let missed = cores
                    .iter()
                    .any(|&k| outcome.report.cores[k].carry_fmax_secs > 1e-9);
                if missed {
                    stats.window_misses += 1;
                    stats.consecutive_window_misses += 1;
                    self.miss_streaks.insert(u);
                } else {
                    stats.consecutive_window_misses = 0;
                    self.miss_streaks.remove(&u);
                }
            }
            self.window_user_cores.clear();
        }
        self.slot += 1;
    }
}

/// Runs admitted users' slots through an execution backend.
#[derive(Debug)]
pub struct ServerLoop<'b, B: ExecutionBackend> {
    backend: &'b mut B,
    cfg: ServerLoopConfig,
}

impl<'b, B: ExecutionBackend> ServerLoop<'b, B> {
    /// Creates a loop over `backend`.
    ///
    /// # Panics
    ///
    /// Panics when `fps` or `gop_slots` is not positive.
    pub fn new(backend: &'b mut B, cfg: ServerLoopConfig) -> Self {
        assert!(cfg.fps > 0.0, "fps must be positive");
        assert!(cfg.gop_slots > 0, "gop must have slots");
        Self { backend, cfg }
    }

    /// Runs `cfg.slots` slots for `admitted` users, starting from
    /// `initial` placements, and aggregates deadline/energy statistics.
    ///
    /// The backend is reset first, so repeated runs are independent.
    pub fn run(
        &mut self,
        source: &impl DemandSource,
        admitted: &[usize],
        initial: &[Placement],
    ) -> LoopReport {
        self.run_with_hook(source, admitted, initial, |_| None)
    }

    /// Like [`ServerLoop::run`], calling `hook` at every GOP boundary
    /// before placement. Returning `Some(users)` replaces the admitted
    /// membership from that GOP on — the single-shard form of the
    /// admission subsystem's admit/evict contract (the sharded
    /// controller drives [`LoopDriver`]s directly, in lockstep).
    ///
    /// The hook observes the in-flight [`LoopDriver`] — current slot,
    /// membership, and per-user on-time/energy accounting.
    pub fn run_with_hook<F>(
        &mut self,
        source: &impl DemandSource,
        admitted: &[usize],
        initial: &[Placement],
        mut hook: F,
    ) -> LoopReport
    where
        F: FnMut(&LoopDriver<&mut B>) -> Option<Vec<usize>>,
    {
        let cfg = self.cfg;
        if cfg.slots == 0 {
            return LoopReport::empty();
        }
        let mut driver =
            LoopDriver::new(&mut *self.backend, cfg, admitted.to_vec(), initial.to_vec());
        let mut done = 0;
        while done < cfg.slots {
            if let Some(next) = hook(&driver) {
                driver.set_membership(next);
            }
            let n = cfg.gop_slots.min(cfg.slots - done);
            driver.advance(source, n);
            done += n;
        }
        driver.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimBackend;
    use medvt_mpsoc::{Platform, PowerModel};

    const SLOT: f64 = 1.0 / 24.0;

    struct FlatSource {
        tiles: usize,
        secs: f64,
    }

    impl DemandSource for FlatSource {
        fn demand_at(&self, _user: usize, _slot: usize) -> Vec<f64> {
            vec![self.secs; self.tiles]
        }
    }

    fn cfg(slots: usize, replan: ReplanPolicy) -> ServerLoopConfig {
        ServerLoopConfig {
            fps: 24.0,
            slots,
            policy: DvfsPolicy::StretchToDeadline,
            replan,
            gop_slots: 8,
            window_slots: None,
        }
    }

    #[test]
    fn light_load_meets_every_window() {
        let mut backend = SimBackend::new(Platform::quad_core(), PowerModel::default());
        let source = FlatSource {
            tiles: 4,
            secs: SLOT / 16.0,
        };
        let mut sl = ServerLoop::new(
            &mut backend,
            cfg(48, ReplanPolicy::PerGop { headroom: 1.1 }),
        );
        let report = sl.run(&source, &[0], &[]);
        assert_eq!(report.miss_slots, 0);
        assert_eq!(report.window_misses, 0);
        assert!(report.windows > 0);
        assert!(report.energy_j > 0.0);
        assert!((report.on_time_rate() - 1.0).abs() < 1e-12);
        // Per-user accounting: the single user owns every attributed
        // joule and meets every one of its windows.
        let u = report.user(0).expect("user 0 accounted");
        assert_eq!(u.windows, 2);
        assert_eq!(u.window_misses, 0);
        assert_eq!(u.consecutive_window_misses, 0);
        assert_eq!(u.active_slots, 48);
        assert!(u.energy_j > 0.0);
        assert!(u.energy_j <= report.energy_j + 1e-12);
    }

    #[test]
    fn static_replan_keeps_initial_placements_loaded() {
        let mut backend = SimBackend::new(Platform::quad_core(), PowerModel::default());
        let source = FlatSource {
            tiles: 2,
            secs: SLOT / 4.0,
        };
        // Initial placements put both tiles on core 3 only.
        let initial = vec![
            Placement {
                user: 0,
                thread: 0,
                core: 3,
                secs: SLOT / 4.0,
            },
            Placement {
                user: 0,
                thread: 1,
                core: 3,
                secs: SLOT / 4.0,
            },
        ];
        let mut sl = ServerLoop::new(&mut backend, cfg(8, ReplanPolicy::Static));
        let report = sl.run(&source, &[0], &initial);
        // Exactly one core ever active.
        assert_eq!(report.active_core_slots, 8);
        assert_eq!(report.miss_slots, 0);
    }

    #[test]
    fn overload_counts_misses_and_windows() {
        let mut backend = SimBackend::new(Platform::quad_core(), PowerModel::default());
        // 4 users x 4 tiles x 0.5 slots = 8 core-slots of work on 4
        // cores: permanently overloaded.
        let source = FlatSource {
            tiles: 4,
            secs: SLOT / 2.0,
        };
        let mut sl = ServerLoop::new(
            &mut backend,
            cfg(48, ReplanPolicy::PerGop { headroom: 1.0 }),
        );
        let report = sl.run(&source, &[0, 1, 2, 3], &[]);
        assert!(report.miss_slots > 0);
        assert!(report.window_misses > 0);
        assert!(report.on_time_rate() < 1.0);
        // Sustained overload: every user accumulates consecutive
        // missed windows — the signal eviction keys on.
        for u in 0..4 {
            let stats = report.user(u).expect("accounted");
            assert!(stats.window_misses > 0, "user {u} should miss");
            assert_eq!(stats.consecutive_window_misses, stats.window_misses);
        }
    }

    #[test]
    fn empty_run_reports_zero_not_nan() {
        // Zero-window case: rates must come back 0.0, never NaN.
        let report = LoopReport::empty();
        assert_eq!(report.windows, 0);
        assert_eq!(report.slots, 0);
        assert!(report.on_time_rate() == 0.0);
        assert!(report.avg_active_cores() == 0.0);
        assert!(!report.on_time_rate().is_nan());
        assert!(!report.avg_active_cores().is_nan());
        // A zero-slot configured run takes the same path.
        let mut backend = SimBackend::new(Platform::quad_core(), PowerModel::default());
        let source = FlatSource {
            tiles: 1,
            secs: 0.0,
        };
        let mut sl = ServerLoop::new(&mut backend, cfg(0, ReplanPolicy::Static));
        let r = sl.run(&source, &[0], &[]);
        assert_eq!(r.on_time_rate(), 0.0);
        assert_eq!(r.avg_active_cores(), 0.0);
    }

    /// A source with demand only at one slot.
    struct SpikeSource {
        at: usize,
        secs: f64,
    }

    impl DemandSource for SpikeSource {
        fn demand_at(&self, _user: usize, slot: usize) -> Vec<f64> {
            if slot == self.at {
                vec![self.secs]
            } else {
                vec![0.0]
            }
        }
    }

    #[test]
    fn missed_gop_carries_overrun_into_next_window() {
        // A user's frame at slot 23 (last slot of window 1) costs 3
        // slots of f_max time: the overrun must carry into window 2's
        // slots 24/25 and drain there — not be dropped at the window
        // boundary.
        let mut backend = SimBackend::new(Platform::quad_core(), PowerModel::default());
        let source = SpikeSource {
            at: 23,
            secs: SLOT * 3.0,
        };
        let mut sl = ServerLoop::new(&mut backend, cfg(48, ReplanPolicy::Static));
        let initial = vec![Placement {
            user: 0,
            thread: 0,
            core: 0,
            secs: SLOT * 3.0,
        }];
        let report = sl.run(&source, &[0], &initial);
        // 3 slots of work at f_max → busy in slots 23, 24, 25 (plus at
        // most one sliver slot from DVFS-transition latency): the
        // carry crossed the window boundary and kept executing.
        assert!(
            (3..=4).contains(&report.active_core_slots),
            "carry must keep draining: {} active slots",
            report.active_core_slots
        );
        // Slots 23 and 24 (at least) end with work remaining.
        assert!(report.miss_slots >= 2);
        // Window 1 (slots 0–23) misses; window 2 (24–47) has drained
        // the carry long before its boundary and is on time.
        assert_eq!(report.windows, 2);
        assert_eq!(report.window_misses, 1);
        // All three slots' worth of work was executed (energy ≫ idle):
        // nothing was dropped at the boundary.
        let idle_only = PowerModel::default().idle_power_w() * SLOT * 48.0 * 4.0;
        assert!(report.energy_j > idle_only);
    }

    #[test]
    fn window_slots_override_shortens_the_deadline_window() {
        let mut backend = SimBackend::new(Platform::quad_core(), PowerModel::default());
        let source = FlatSource {
            tiles: 1,
            secs: SLOT / 4.0,
        };
        let mut c = cfg(16, ReplanPolicy::PerGop { headroom: 1.0 });
        c.window_slots = Some(4);
        assert_eq!(c.window_len(), 4);
        let mut sl = ServerLoop::new(&mut backend, c);
        let report = sl.run(&source, &[0], &[]);
        // 16 slots in 4-slot windows: four evaluated windows on the
        // single active core (the fps-derived default would give none).
        assert_eq!(report.windows, 4);
        assert_eq!(report.window_misses, 0);
        assert_eq!(report.user(0).expect("accounted").windows, 4);
    }

    #[test]
    fn trailing_partial_window_timing_is_reported() {
        // 30 slots with a 24-slot window: one full window plus a
        // 6-slot partial tail whose modeled time must not vanish.
        let mut backend = SimBackend::new(Platform::quad_core(), PowerModel::default());
        let source = FlatSource {
            tiles: 2,
            secs: SLOT / 4.0,
        };
        let mut sl = ServerLoop::new(&mut backend, cfg(30, ReplanPolicy::Static));
        let initial = vec![
            Placement {
                user: 0,
                thread: 0,
                core: 0,
                secs: SLOT / 4.0,
            },
            Placement {
                user: 0,
                thread: 1,
                core: 0,
                secs: SLOT / 4.0,
            },
        ];
        let report = sl.run(&source, &[0], &initial);
        assert_eq!(report.window_times.len(), 2, "full window + partial tail");
        assert_eq!(report.window_times[0].end_slot, 24);
        assert_eq!(report.window_times[1].end_slot, 30);
        assert!(report.window_times[1].modeled_secs > 0.0);
        // Deadline accounting still counts only completed windows.
        assert_eq!(report.windows, 1);
        // The totals reconcile: every slot's modeled makespan is in
        // exactly one window entry.
        let full_run_modeled = report.modeled_window_secs();
        assert!(full_run_modeled >= report.window_times[0].modeled_secs);
        assert!(
            report.window_times[1].modeled_secs < report.window_times[0].modeled_secs,
            "6-slot tail models less time than the 24-slot window"
        );
    }

    #[test]
    fn incremental_membership_matches_full_replan() {
        // The same admit/evict schedule driven through the legacy
        // set_membership path and the delta-based update_membership
        // path must produce identical accounting — placements are
        // bitwise-equal by the placer contract, so every downstream
        // statistic (energy splits, window misses) follows.
        let source = FlatSource {
            tiles: 3,
            secs: SLOT / 5.0,
        };
        let c = cfg(48, ReplanPolicy::PerGop { headroom: 1.1 });
        let schedule: [(usize, &[usize], &[usize]); 3] =
            [(8, &[1, 2], &[]), (24, &[3], &[0]), (40, &[], &[1, 3])];

        let mut legacy = LoopDriver::new(
            SimBackend::new(Platform::quad_core(), PowerModel::default()),
            c,
            vec![0],
            vec![],
        );
        let mut members = vec![0usize];
        let mut next = 0usize;
        for done in (0..48).step_by(8) {
            if next < schedule.len() && schedule[next].0 == done {
                let (_, add, remove) = schedule[next];
                members.retain(|u| !remove.contains(u));
                members.extend_from_slice(add);
                members.sort_unstable();
                legacy.set_membership(members.clone());
                next += 1;
            }
            legacy.advance(&source, 8);
        }

        let mut engine = LoopDriver::new(
            SimBackend::new(Platform::quad_core(), PowerModel::default()),
            c,
            vec![0],
            vec![],
        );
        // Engage the engine from the start with an empty delta.
        engine.update_membership(&[], &[]);
        let mut next = 0usize;
        for done in (0..48).step_by(8) {
            if next < schedule.len() && schedule[next].0 == done {
                let (_, add, remove) = schedule[next];
                engine.update_membership(add, remove);
                next += 1;
            }
            engine.advance(&source, 8);
        }

        let mut a = legacy.into_report();
        let mut b = engine.into_report();
        // Replan counts legitimately differ (the engine no-ops
        // unchanged boundaries); everything else must be identical.
        assert!(
            b.controller.replans <= a.controller.replans,
            "engine must not replan more often than the legacy path"
        );
        a.controller = ControllerTiming::default();
        b.controller = ControllerTiming::default();
        a.wall_secs = 0.0;
        b.wall_secs = 0.0;
        assert_eq!(a, b, "delta path must reproduce the legacy accounting");
    }

    #[test]
    fn membership_hook_admits_and_evicts_at_gop_boundaries() {
        let mut backend = SimBackend::new(Platform::quad_core(), PowerModel::default());
        let source = FlatSource {
            tiles: 1,
            secs: SLOT / 4.0,
        };
        // Start with user 0; admit user 1 from GOP 1; evict both from
        // GOP 4.
        let mut sl = ServerLoop::new(
            &mut backend,
            cfg(48, ReplanPolicy::PerGop { headroom: 1.0 }),
        );
        let report = sl.run_with_hook(&source, &[0], &[], |driver| match driver.slot() {
            8 => Some(vec![0, 1]),
            32 => Some(vec![]),
            _ => None,
        });
        let u0 = report.user(0).expect("user 0 ran");
        let u1 = report.user(1).expect("user 1 ran");
        // User 0: GOPs 0–3 → 32 slots; user 1: GOPs 1–3 → 24 slots.
        assert_eq!(u0.active_slots, 32);
        assert_eq!(u1.active_slots, 24);
        assert!(u0.energy_j > u1.energy_j);
    }
}

//! A persistent per-core worker pool with FIFO queues and scoped,
//! borrow-friendly job submission.
//!
//! One OS thread per logical core; each worker owns a private FIFO
//! channel, so jobs submitted to the same core run in submission order
//! — exactly the per-core queue discipline Algorithm 2's placement
//! assumes. Jobs may borrow from the caller's stack: [`WorkerPool::scope`]
//! blocks until every submitted job finished, which is what makes the
//! lifetime-erasing transmute in [`PoolScope::submit`] sound.
//!
//! Completion and panic tracking are **per scope** (each scope owns
//! its own counter/flag, carried into the job wrappers), so
//! concurrent scopes on one pool neither block on each other's jobs
//! nor steal each other's panics.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One executed job, as seen by the pool's execution log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRecord {
    /// Worker (core) that ran the job.
    pub worker: usize,
    /// Caller-meaningful user id (or frame POC for encoder tiles).
    pub user: usize,
    /// Caller-meaningful item id (thread/tile index).
    pub item: usize,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Pool-wide state: the diagnostics log only. Completion tracking is
/// per scope.
struct Shared {
    log: Mutex<Vec<ExecRecord>>,
    log_enabled: AtomicBool,
}

/// Per-scope completion state, shared between the scope and the
/// wrappers of the jobs it submitted.
struct ScopeState {
    pending: Mutex<usize>,
    idle: Condvar,
    panicked: AtomicBool,
}

impl ScopeState {
    fn wait_idle(&self) {
        let mut pending = self.pending.lock().expect("pending lock");
        while *pending > 0 {
            pending = self.idle.wait(pending).expect("idle wait");
        }
    }
}

/// The persistent worker pool.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.senders.len())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` persistent threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            log: Mutex::new(Vec::new()),
            log_enabled: AtomicBool::new(false),
        });
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<Job>();
            let handle = std::thread::Builder::new()
                .name(format!("medvt-worker-{w}"))
                .spawn(move || {
                    for job in rx {
                        job();
                    }
                })
                .expect("spawn pool worker");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            handles,
            shared,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Enables or disables the execution log (disabled by default; the
    /// log is for tests and diagnostics, not the hot path).
    pub fn set_logging(&self, enabled: bool) {
        self.shared.log_enabled.store(enabled, Ordering::SeqCst);
        if enabled {
            self.shared.log.lock().expect("log lock").clear();
        }
    }

    /// Drains the execution log collected since logging was enabled.
    pub fn drain_log(&self) -> Vec<ExecRecord> {
        std::mem::take(&mut *self.shared.log.lock().expect("log lock"))
    }

    /// Runs `f` with a scope whose submitted jobs may borrow from the
    /// caller. Returns once every job submitted inside `f` completed.
    /// Scopes are independent: concurrent scopes on the same pool wait
    /// only for their own jobs.
    ///
    /// # Panics
    ///
    /// Panics when any job submitted by *this* scope panicked.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        let state = Arc::new(ScopeState {
            pending: Mutex::new(0),
            idle: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        // The guard waits even when `f` unwinds: submitted jobs borrow
        // the caller's stack, so the frame must not be torn down while
        // any of them still runs — this wait is what makes the
        // lifetime erasure in `PoolScope::submit` sound.
        struct WaitGuard<'s>(&'s ScopeState);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait_idle();
            }
        }
        let guard = WaitGuard(&state);
        let scope = PoolScope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let out = f(&scope);
        drop(guard);
        if state.panicked.load(Ordering::SeqCst) {
            panic!("a pool job panicked");
        }
        out
    }

    /// Enqueues an already-wrapped job on `core`'s FIFO queue.
    fn dispatch(&self, core: usize, job: Job) {
        let worker = core % self.senders.len();
        self.senders[worker]
            .send(job)
            .expect("worker alive while pool alive");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // closes the channels; workers exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Submission handle inside [`WorkerPool::scope`].
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for PoolScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolScope").finish_non_exhaustive()
    }
}

impl<'env> PoolScope<'_, 'env> {
    /// Enqueues `job` on the FIFO queue of `core` (modulo the worker
    /// count). `user`/`item` tag the job in the execution log.
    pub fn submit(&self, core: usize, user: usize, item: usize, job: impl FnOnce() + Send + 'env) {
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(job);
        // SAFETY: `scope` blocks until this scope's pending count hits
        // zero (even on unwind, via its guard), so borrows with
        // lifetime 'env — which outlives the scope call — are live for
        // the job's whole execution.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        {
            let mut pending = self.state.pending.lock().expect("pending lock");
            *pending += 1;
        }
        let state = Arc::clone(&self.state);
        let shared = Arc::clone(&self.pool.shared);
        let worker = core % self.pool.workers();
        let record = ExecRecord { worker, user, item };
        self.pool.dispatch(
            core,
            Box::new(move || {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    state.panicked.store(true, Ordering::SeqCst);
                }
                if shared.log_enabled.load(Ordering::Relaxed) {
                    shared.log.lock().expect("log lock").push(record);
                }
                let mut pending = state.pending.lock().expect("pending lock");
                *pending -= 1;
                if *pending == 0 {
                    state.idle.notify_all();
                }
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_waits_for_borrowed_jobs() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for i in 0..64 {
                let counter = &counter;
                s.submit(i % 4, 0, i, move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn per_core_fifo_order_is_preserved() {
        let pool = WorkerPool::new(2);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..32 {
                let order = &order;
                s.submit(0, 0, i, move || {
                    order.lock().unwrap().push(i);
                });
            }
        });
        let seen = order.into_inner().unwrap();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn log_records_worker_assignment() {
        let pool = WorkerPool::new(3);
        pool.set_logging(true);
        pool.scope(|s| {
            for i in 0..9 {
                s.submit(i % 3, 7, i, || {});
            }
        });
        let log = pool.drain_log();
        assert_eq!(log.len(), 9);
        for r in &log {
            assert_eq!(r.worker, r.item % 3);
            assert_eq!(r.user, 7);
        }
        pool.set_logging(false);
    }

    #[test]
    fn oversubscribed_core_ids_wrap() {
        let pool = WorkerPool::new(2);
        pool.set_logging(true);
        pool.scope(|s| {
            s.submit(31, 0, 0, || {});
        });
        let log = pool.drain_log();
        assert_eq!(log[0].worker, 31 % 2);
    }

    #[test]
    #[should_panic(expected = "pool job panicked")]
    fn job_panic_propagates_to_scope() {
        let pool = WorkerPool::new(2);
        pool.scope(|s| {
            s.submit(0, 0, 0, || panic!("boom"));
        });
    }

    #[test]
    fn concurrent_scopes_do_not_cross_talk() {
        let pool = Arc::new(WorkerPool::new(2));
        let started = Arc::new(AtomicUsize::new(0));
        // Scope B (panicking) runs on another thread against the same
        // pool while scope A runs fine jobs; A must complete normally
        // and B must see its own panic.
        let pool_b = Arc::clone(&pool);
        let b = std::thread::spawn(move || {
            catch_unwind(AssertUnwindSafe(|| {
                pool_b.scope(|s| {
                    s.submit(0, 1, 0, || panic!("scope B job"));
                });
            }))
            .is_err()
        });
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            started.store(1, Ordering::SeqCst);
            for i in 0..16 {
                let count = &count;
                s.submit(i, 0, i, move || {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 16, "scope A ran all jobs");
        assert!(b.join().expect("thread B"), "scope B saw its own panic");
    }
}

//! Motion-search laboratory: compare every implemented block-matching
//! algorithm on one phantom video — candidates evaluated, residual
//! cost, and how each handles the bio-medical motion structure.
//!
//! Run: `cargo run --release --example motion_search_lab`

use medvt::frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt::frame::{Rect, Resolution};
use medvt::motion::{
    BioMedicalSearch, CostMetric, CrossSearch, DiamondSearch, FullSearch, GopPhase, HexOrientation,
    HexagonSearch, MotionField, MotionLevel, MotionSearch, MotionVector, OneAtATimeSearch,
    SearchWindow, ThreeStepSearch, TzSearch,
};

fn main() {
    // Panning bones study: global motion 1.5 px/frame to the right.
    let video = PhantomVideo::builder(BodyPart::Bones)
        .resolution(Resolution::new(320, 240))
        .motion(MotionPattern::Pan { dx: 1.5, dy: 0.0 })
        .seed(13)
        .build();
    let reference = video.render(0);
    let current = video.render(4); // 6 px of true motion
    let tile = Rect::new(64, 56, 192, 128); // the anatomy-bearing center

    let algorithms: Vec<(&str, Box<dyn MotionSearch>)> = vec![
        ("full", Box::new(FullSearch)),
        ("three-step", Box::new(ThreeStepSearch)),
        ("diamond", Box::new(DiamondSearch)),
        ("cross", Box::new(CrossSearch)),
        ("one-at-a-time", Box::new(OneAtATimeSearch::new())),
        (
            "hexagon-h",
            Box::new(HexagonSearch::new(HexOrientation::Horizontal)),
        ),
        (
            "hexagon-rot",
            Box::new(HexagonSearch::new(HexOrientation::Rotating)),
        ),
        ("tz (HM ref)", Box::new(TzSearch::new())),
        (
            "biomed first",
            Box::new(BioMedicalSearch::new(MotionLevel::High, GopPhase::First)),
        ),
        (
            "biomed follow",
            Box::new(BioMedicalSearch::new(
                MotionLevel::High,
                GopPhase::Subsequent {
                    direction: MotionVector::new(-6, 0),
                },
            )),
        ),
    ];

    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>10}",
        "algorithm", "evaluations", "total SAD", "dominant MV", "coherence"
    );
    let mut full_evals = 0u64;
    for (name, algo) in &algorithms {
        let (field, stats) = MotionField::estimate(
            current.y(),
            reference.y(),
            tile,
            16,
            algo.as_ref(),
            SearchWindow::W64,
            CostMetric::Sad,
        );
        if *name == "full" {
            full_evals = stats.evaluations;
        }
        let speedup = if stats.evaluations > 0 && full_evals > 0 {
            format!(
                "({:>5.1}x vs full)",
                full_evals as f64 / stats.evaluations as f64
            )
        } else {
            String::new()
        };
        println!(
            "{:<14} {:>12} {:>14} {:>12} {:>9.0}% {}",
            name,
            stats.evaluations,
            stats.total_cost,
            field.dominant_mv().to_string(),
            field.coherence() * 100.0,
            speedup
        );
    }
    println!(
        "\nTrue motion is (-6,0). The direction-seeded biomed follow-up starts\n\
         in the inherited direction and needs a fraction of the evaluations —\n\
         the mechanism behind the paper's 4x ME speedup. (The low-motion\n\
         variant would shrink the window to 8x8, which is why the analyzer\n\
         only assigns it to tiles probed as low-motion.)"
    );
}

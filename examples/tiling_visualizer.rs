//! Tiling visualizer: render phantom frames with the content-aware
//! tiling and the baseline [19] tiling overlaid (paper Fig. 1 / Fig. 3
//! style) plus texture/motion class maps, as PGM images.
//!
//! Run: `cargo run --release --example tiling_visualizer`
//! Output: `target/visualizer/*.pgm`

use medvt::analyze::{
    analyze_tiling, AnalyzerConfig, CapacityBalancedTiler, Retiler, TextureClass,
};
use medvt::frame::io::{overlay_rects, save_pgm};
use medvt::frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt::frame::{Plane, Resolution};
use medvt::motion::MotionLevel;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = PathBuf::from("target/visualizer");
    std::fs::create_dir_all(&out)?;

    let video = PhantomVideo::builder(BodyPart::LungChest)
        .resolution(Resolution::new(320, 240))
        .motion(MotionPattern::Pan { dx: 1.2, dy: 0.3 })
        .seed(42)
        .build();
    let f0 = video.render(0);
    let f4 = video.render(4);

    // Raw frames (paper Fig. 1 top row).
    save_pgm(out.join("frame_t0.pgm"), f0.y())?;
    save_pgm(out.join("frame_t4.pgm"), f4.y())?;

    // Content-aware re-tiling.
    let cfg = AnalyzerConfig {
        min_tile_width: 32,
        min_tile_height: 32,
        ..Default::default()
    };
    let retiler = Retiler::new(cfg)?;
    let outcome = retiler.retile(f4.y(), Some(f0.y()));
    let tiles = outcome.tiling.tiles();
    save_pgm(
        out.join("tiling_proposed.pgm"),
        &overlay_rects(f4.y(), tiles, 255),
    )?;
    println!(
        "proposed tiling: {} tiles (borders l{} r{} t{} b{})",
        tiles.len(),
        outcome.borders.left,
        outcome.borders.right,
        outcome.borders.top,
        outcome.borders.bottom
    );
    for a in &outcome.analyses {
        println!(
            "  {:<16} texture {:<6} (cv {:.3})  motion {:?}",
            a.rect.to_string(),
            a.texture.class.to_string(),
            a.texture.cv,
            a.motion_level()
        );
    }

    // Baseline [19] tiling.
    let base = CapacityBalancedTiler::new(5).tile(f4.y());
    save_pgm(
        out.join("tiling_baseline19.pgm"),
        &overlay_rects(f4.y(), base.tiles(), 255),
    )?;
    println!("baseline tiling: {} capacity-balanced tiles", base.len());

    // Class maps over a fine uniform grid.
    let grid = medvt::analyze::Tiling::uniform(f4.y().bounds(), 10, 6);
    let analyses = analyze_tiling(f4.y(), Some(f0.y()), &grid, &cfg);
    let mut texture_map = Plane::new(320, 240);
    let mut motion_map = Plane::new(320, 240);
    for a in &analyses {
        let tex = match a.texture.class {
            TextureClass::Low => 40,
            TextureClass::Medium => 140,
            TextureClass::High => 250,
        };
        let mot = match a.motion_level() {
            MotionLevel::Low => 40,
            MotionLevel::High => 250,
        };
        texture_map.fill_rect(&a.rect, tex);
        motion_map.fill_rect(&a.rect, mot);
    }
    save_pgm(out.join("map_texture.pgm"), &texture_map)?;
    save_pgm(out.join("map_motion.pgm"), &motion_map)?;

    println!("\nwrote PGM images to {}", out.display());
    Ok(())
}

//! Multi-user telemedicine server: profile the medical suite on the
//! placement-aware thread pool, then serve an always-full queue of
//! doctors on the 32-core Xeon platform with both the proposed
//! scheduler and the baseline [19], comparing throughput and power.
//!
//! Profiling encodes every tile on `ThreadPoolBackend` — the runtime
//! places tiles on its per-core FIFO queues with Algorithm 2's
//! `place_threads` — and serving drives the frame slots through the
//! same backend, so this example exercises the real execution path
//! end to end (the analytical `SimBackend` reports identical numbers).
//!
//! Run: `cargo run --release --example multi_user_server`

use medvt::analyze::AnalyzerConfig;
use medvt::core::{
    profile_video_with, Approach, Baseline19Controller, BaselineConfig, ContentAwareController,
    PipelineConfig, ServerConfig, ServerSim,
};
use medvt::encoder::EncoderConfig;
use medvt::frame::synth::{medical_suite, PhantomConfig, PhantomVideo};
use medvt::frame::Resolution;
use medvt::runtime::ThreadPoolBackend;
use medvt::sched::{LutBank, WorkloadLut};

fn main() {
    let resolution = Resolution::new(320, 240);
    let frames = 33;
    let server_cfg = ServerConfig::default();
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let pool =
        ThreadPoolBackend::with_workers(server_cfg.platform.clone(), server_cfg.power, workers);
    println!(
        "profiling the 10-video medical suite at {resolution} ({frames} frames each) \
         on a {workers}-worker placement-aware pool…"
    );

    let pipeline = PipelineConfig {
        analyzer: AnalyzerConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut bank = LutBank::new();
    let mut proposed = Vec::new();
    let mut baseline = Vec::new();
    for (name, cfg) in medical_suite(2024) {
        let cfg = PhantomConfig { resolution, ..cfg };
        let class = cfg.body_part.label().to_string();
        let clip = PhantomVideo::new(cfg).capture(frames);
        // Proposed: LUTs transfer within a body-part class (§III-D1).
        let lut: WorkloadLut = bank.seed_for(&class);
        let mut ctl = ContentAwareController::new(pipeline, lut);
        proposed.push(profile_video_with(
            &name,
            &class,
            &clip,
            &mut ctl,
            &EncoderConfig::default(),
            &pool,
        ));
        bank.learn(&class, ctl.lut());
        // Baseline [19].
        let mut base = Baseline19Controller::new(BaselineConfig::default());
        baseline.push(profile_video_with(
            &name,
            &class,
            &clip,
            &mut base,
            &EncoderConfig::default(),
            &pool,
        ));
        println!("  {name}: done");
    }

    let sim = ServerSim::new(server_cfg);
    let mut backend = pool;
    let p = sim.serve_max_on(&mut backend, &proposed, Approach::Proposed);
    let b = sim.serve_max_on(&mut backend, &baseline, Approach::Baseline);

    println!("\n32-core server, 24 fps per user, queue always full:");
    for r in [&p, &b] {
        println!(
            "  {:<10} {:>3} users  PSNR {:>5.1} dB  {:>5.2} Mbps  {:>6.1} W  on-time {:>4.0}%",
            r.approach.label(),
            r.users_served,
            r.psnr_db.avg,
            r.bitrate_mbps.avg,
            r.avg_power_w,
            r.on_time_rate() * 100.0
        );
    }
    println!(
        "\nthroughput gain: {:.2}x users (paper: 1.6x)",
        p.users_served as f64 / b.users_served.max(1) as f64
    );
    if let Some(savings) = sim.power_savings_percent(&proposed, &baseline, b.users_served.min(8)) {
        println!(
            "power savings at {} users: {savings:.0}% (paper: up to 44%)",
            b.users_served.min(8)
        );
    }
}

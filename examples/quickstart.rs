//! Quickstart: transcode a synthetic bio-medical video with the full
//! content-aware pipeline and print quality/throughput numbers.
//!
//! Run: `cargo run --release --example quickstart`

use medvt::analyze::AnalyzerConfig;
use medvt::core::{ContentAwareController, PipelineConfig, TranscodeController};
use medvt::encoder::{EncoderConfig, VideoEncoder};
use medvt::frame::synth::{BodyPart, PhantomVideo};
use medvt::frame::Resolution;
use medvt::sched::WorkloadLut;

fn main() {
    // 1. A stored "master" video: two seconds of phantom brain MRI.
    //    (Swap in `medvt::frame::io::load_y4m` for real material.)
    let video = PhantomVideo::builder(BodyPart::Brain)
        .resolution(Resolution::new(320, 240))
        .seed(7)
        .build();
    let clip = video.capture(49);
    println!(
        "source: {} frames @ {} ({:.1}s of {})",
        clip.len(),
        clip.resolution(),
        clip.duration_secs(),
        video.config().body_part,
    );

    // 2. The paper's pipeline: content-aware re-tiling, per-tile QP,
    //    bio-medical fast motion search, online workload LUT.
    let config = PipelineConfig {
        analyzer: AnalyzerConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut controller = ContentAwareController::new(config, WorkloadLut::new());

    // 3. Encode with the Random Access GOP-8 structure.
    let stats = VideoEncoder::new(EncoderConfig::default())
        .parallel(true)
        .encode_clip(&clip, &mut controller);

    println!("encoded:  PSNR {:.2} dB", stats.mean_psnr());
    println!("          bitrate {:.3} Mbit/s", stats.bitrate_mbps());

    // 4. Per-tile workload picture of the final GOP.
    let mut reports = controller.drain_reports();
    reports.sort_by_key(|r| r.poc);
    let last = reports.last().expect("at least one frame");
    println!(
        "          {} tiles in the last GOP's tiling:",
        last.tiles.len()
    );
    for t in &last.tiles {
        println!(
            "            {:<16} {:>7.2} ms @fmax  {:>6} bits  {:>5.1} dB",
            t.rect.to_string(),
            t.fmax_secs * 1e3,
            t.bits,
            t.psnr_db
        );
    }
    let demand: f64 = controller.demand_secs().iter().sum();
    println!(
        "          estimated demand {:.1} ms/frame → {} core(s) at 24 fps",
        demand * 1e3,
        (demand * 24.0).ceil() as usize
    );
}

//! Microbenchmark for the two PR-level kernel hot paths: one SATD
//! block cost per dispatch tier and one Exp-Golomb burst per writer.
//!
//! Run with `cargo run --release --example kernel_micro`. On an AVX2
//! host expect the SIMD SATD to land well under half the scalar time
//! and the word-batched writer an order of magnitude under the
//! per-bit reference writer; `MEDVT_FORCE_SCALAR=1` pins the resolved
//! tier (the per-tier rows still override it explicitly).

use medvt::encoder::bits::{self, BitWriter};
use medvt::frame::{Plane, Rect};
use medvt::motion::cost::{self, simd};
use medvt::motion::MotionVector;
use std::hint::black_box;
use std::time::Instant;

const SATD_REPS: u32 = 200_000;
const UE_VALUES: u32 = 1_000_000;

fn textured(width: usize, height: usize, salt: usize) -> Plane {
    let mut p = Plane::new(width, height);
    for row in 0..height {
        for col in 0..width {
            p.set(col, row, ((col * 31 + row * 17 + salt * 7) % 256) as u8);
        }
    }
    p
}

fn main() {
    println!(
        "resolved dispatch tier: {} (forced_scalar={})",
        simd::tier().name(),
        simd::forced_scalar()
    );

    // One 16x16 SATD block cost, interior candidate, per tier.
    let cur = textured(64, 64, 1);
    let reference = textured(64, 64, 2);
    let block = Rect::new(24, 24, 16, 16);
    let mv = MotionVector::new(3, -2);
    for tier in simd::DispatchTier::ALL {
        if !tier.available() {
            println!("satd 16x16 [{}]:    unavailable on this host", tier.name());
            continue;
        }
        let ns = simd::with_tier(tier, || {
            let clock = Instant::now();
            for _ in 0..SATD_REPS {
                black_box(cost::satd(&cur, &reference, &block, mv));
            }
            clock.elapsed().as_nanos() as f64 / f64::from(SATD_REPS)
        });
        println!("satd 16x16 [{}]:    {ns:>7.1} ns/call", tier.name());
    }

    // One million-value write_ue burst, batched vs per-bit writer.
    let values: Vec<u32> = (0..UE_VALUES).map(|i| (i * 2654435761) % 100_000).collect();
    let mut w = BitWriter::new();
    let clock = Instant::now();
    for &v in &values {
        w.write_ue(v);
    }
    let batched = clock.elapsed().as_nanos() as f64 / f64::from(UE_VALUES);
    let mut r = bits::reference::BitWriter::new();
    let clock = Instant::now();
    for &v in &values {
        r.write_ue(v);
    }
    let per_bit = clock.elapsed().as_nanos() as f64 / f64::from(UE_VALUES);
    assert_eq!(w.bits_written(), r.bits_written());
    println!("write_ue (batched):  {batched:>7.1} ns/code");
    println!("write_ue (per-bit):  {per_bit:>7.1} ns/code");
}

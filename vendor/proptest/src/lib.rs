//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the small slice of proptest the workspace tests use:
//! the `proptest!` macro over `arg in strategy` bindings, integer and
//! float range strategies, `collection::vec`, `ProptestConfig`
//! (`with_cases`), and `prop_assert!`/`prop_assert_eq!`.
//!
//! Sampling is deterministic (splitmix64 seeded from the test name) —
//! no shrinking, no persistence. Each test runs `cases` sampled
//! inputs plus the range endpoints-biased first iterations.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next pseudo-random u64 (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Seeds a generator from a test path (stable across runs).
pub fn rng_for(name: &str) -> Rng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Rng::new(h)
}

/// A source of sampled values.
pub trait Strategy {
    /// The sampled value type.
    type Value;
    /// Draws one value. `case` 0 and 1 are biased to the strategy's
    /// extremes so boundary behaviour is always exercised.
    fn sample(&self, rng: &mut Rng, case: u32) -> Self::Value;

    /// Maps sampled values through `f` (the real proptest's
    /// `Strategy::prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut Rng, case: u32) -> O {
        (self.f)(self.inner.sample(rng, case))
    }
}

/// A strategy that always yields a clone of one value (`Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut Rng, _case: u32) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut Rng, case: u32) -> Self::Value {
                ($(self.$idx.sample(rng, case),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng, case: u32) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                match case {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => ((self.start as i128)
                        + (rng.next_u64() as i128).rem_euclid(span)) as $t,
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng, case: u32) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                match case {
                    0 => lo,
                    1 => hi,
                    _ => ((lo as i128)
                        + (rng.next_u64() as i128).rem_euclid(span)) as $t,
                }
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut Rng, case: u32) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        match case {
            0 => self.start,
            _ => self.start + (self.end - self.start) * rng.next_f64(),
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut Rng, case: u32) -> f64 {
        match case {
            0 => *self.start(),
            1 => *self.end(),
            _ => *self.start() + (*self.end() - *self.start()) * rng.next_f64(),
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Rng, Strategy};
    use std::ops::Range;

    /// Length specification: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut Rng, case: u32) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut Rng, _case: u32) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut Rng, case: u32) -> usize {
            Strategy::sample(self, rng, case)
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Creates a vector strategy (`vec(strategy, len_or_range)`).
    pub fn vec<S, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng, case: u32) -> Vec<S::Value> {
            let n = self.len.sample_len(rng, case);
            // Element draws past case 1 use plain sampling so vectors
            // are not all-extreme.
            (0..n)
                .map(|i| {
                    let c = if case <= 1 && i == 0 { case } else { 2 };
                    self.element.sample(rng, c)
                })
                .collect()
        }
    }
}

/// Test-runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// Number of sampled cases per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }
}

/// Asserts a property (plain `assert!` under the hood).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality (plain `assert_eq!` under the hood).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Skips the current case when the assumption does not hold (the
/// `proptest!` body runs inside a per-case loop, so this `continue`s).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Defines property tests: each `arg in strategy` binding is sampled
/// `cases` times and the body re-run per case.
#[macro_export]
macro_rules! proptest {
    (@fns $cfg:expr;) => {};
    (@fns $cfg:expr;
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng, case);)+
                $body
            }
        }
        $crate::proptest!{@fns $cfg; $($rest)*}
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@fns $cfg; $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::proptest!{
            @fns $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// The prelude: everything the `proptest!` call sites import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, Strategy};
}

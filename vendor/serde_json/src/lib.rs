//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! facade's [`serde::Value`] tree as JSON text.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (the vendored value tree cannot actually fail,
/// but the signature matches `serde_json`).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |o, item, i, d| {
                write_value(o, item, i, d);
            },
            '[',
            ']',
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            |o, (k, val), i, d| {
                write_escaped(o, k);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(o, val, i, d);
            },
            '{',
            '}',
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no crates.io access, so this crate
//! provides the minimal surface the workspace uses:
//!
//! * a [`Serialize`] trait producing a JSON-like [`Value`] tree
//!   (rendered by the vendored `serde_json`);
//! * a marker [`Deserialize`] trait with a blanket impl (nothing in the
//!   workspace deserializes yet);
//! * `#[derive(Serialize, Deserialize)]` via the vendored
//!   `serde_derive`.
//!
//! Swapping in the real serde later only requires replacing the
//! `vendor/` path dependencies — call sites are source-compatible.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree — the serialization target of this facade.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented since
/// nothing in the workspace deserializes yet.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

/// Maps serialize as arrays of `[key, value]` pairs so that non-string
/// keys stay representable.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal `serde` facade (see `vendor/serde`) whose
//! `Serialize` trait is a single `to_value(&self) -> Value` method.
//! This crate derives that trait for the struct/enum shapes the
//! workspace actually uses, parsing the item with nothing but
//! `proc_macro` token trees (no `syn`/`quote`).
//!
//! Supported shapes: unit/named/tuple structs and enums whose variants
//! are unit, tuple or struct-like. Generic items are rejected with a
//! compile error (none exist in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (`to_value`) for an item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derives the vendored `serde::Deserialize`. The facade's trait is a
/// marker with a blanket impl, so there is nothing to generate.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum ItemKind {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Consumes leading attributes (`#[...]`, doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum keyword, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic items ({name})");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct {
                    fields: parse_named_fields(g.stream()),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct {
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => ItemKind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => ItemKind::Enum {
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive Serialize for `{other}` items"),
    };
    Item { name, kind }
}

/// Splits a brace-group body into top-level comma-separated chunks,
/// treating `<...>` generic arguments as nested (angle brackets are
/// plain puncts, not token groups).
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0usize;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                // Ignore the `>` of `->` (fn-pointer return types).
                let after_dash = matches!(
                    cur.last(),
                    Some(TokenTree::Punct(prev)) if prev.as_char() == '-'
                );
                if !after_dash {
                    angle_depth = angle_depth.saturating_sub(1);
                }
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_commas(stream)
        .into_iter()
        .map(|chunk| {
            let i = skip_attrs_and_vis(&chunk, 0);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_commas(stream)
        .into_iter()
        .map(|chunk| {
            let i = skip_attrs_and_vis(&chunk, 0);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let shape = match chunk.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => VariantShape::Unit, // unit variant, maybe `= disc`
            };
            Variant { name, shape }
        })
        .collect()
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => "::serde::Value::Object(::std::vec::Vec::new())".to_string(),
        ItemKind::NamedStruct { fields } => {
            let mut s = String::from("{ let mut m = ::std::vec::Vec::new();");
            for f in fields {
                s.push_str(&format!(
                    "m.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));"
                ));
            }
            s.push_str("::serde::Value::Object(m) }");
            s
        }
        ItemKind::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct { arity } => {
            let mut s = String::from("{ let mut a = ::std::vec::Vec::new();");
            for k in 0..*arity {
                s.push_str(&format!("a.push(::serde::Serialize::to_value(&self.{k}));"));
            }
            s.push_str("::serde::Value::Array(a) }");
            s
        }
        ItemKind::Enum { variants } => {
            let mut s = String::from("match self {");
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => s.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                        let pat = binds.join(", ");
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let mut a = String::from("{ let mut a = ::std::vec::Vec::new();");
                            for b in &binds {
                                a.push_str(&format!("a.push(::serde::Serialize::to_value({b}));"));
                            }
                            a.push_str("::serde::Value::Array(a) }");
                            a
                        };
                        s.push_str(&format!(
                            "{name}::{vname}({pat}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),"
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut inner = String::from("{ let mut m = ::std::vec::Vec::new();");
                        for f in fields {
                            inner.push_str(&format!(
                                "m.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));"
                            ));
                        }
                        inner.push_str("::serde::Value::Object(m) }");
                        s.push_str(&format!(
                            "{name}::{vname} {{ {pat} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),"
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
}

//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `b.iter(..)`,
//! `criterion_group!`/`criterion_main!` — over a plain wall-clock
//! measurement loop (no statistics, plots or comparisons). Results
//! print as `name ... median time/iter`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives timed iterations of one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    /// Median seconds per iteration, recorded for the caller.
    last_secs_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count that runs
    /// for a few milliseconds, then taking the median of 5 batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit ~20 ms?
        let mut n: u64 = 1;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(20) || n >= 1 << 20 {
                break elapsed.as_secs_f64() / n as f64;
            }
            n *= 4;
        };
        // Measure: median of 5 batches sized to ~25 ms each.
        let batch = ((0.025 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 22);
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t.elapsed().as_secs_f64() / batch as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.last_secs_per_iter = samples[samples.len() / 2];
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) -> f64 {
    let mut b = Bencher {
        last_secs_per_iter: 0.0,
    };
    f(&mut b);
    let s = b.last_secs_per_iter;
    let human = if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    };
    println!("bench {label:<48} {human}/iter");
    s
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: R,
    ) -> &mut Self
    where
        R: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| routine(b, input));
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Display,
        routine: R,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), routine);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<R: FnOnce(&mut Bencher)>(&mut self, name: &str, routine: R) -> &mut Self {
        run_one(name, routine);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a group function calling each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
